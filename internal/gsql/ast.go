package gsql

import (
	"strconv"
	"strings"
)

// ---- Top-level statements (DDL and query definitions) ----

// Stmt is any top-level statement.
type Stmt interface{ stmtNode() }

// CreateVertexStmt is CREATE VERTEX Name (attr TYPE [PRIMARY KEY], ...).
type CreateVertexStmt struct {
	Name       string
	Attrs      []AttrDef
	PrimaryKey string
}

// AttrDef is one attribute declaration.
type AttrDef struct {
	Name string
	Type string // INT, FLOAT, STRING, BOOL
}

// CreateEdgeStmt is CREATE [DIRECTED|UNDIRECTED] EDGE Name (FROM A, TO B).
type CreateEdgeStmt struct {
	Name     string
	From, To string
	Directed bool
}

// CreateEmbeddingSpaceStmt is CREATE EMBEDDING SPACE name (k = v, ...).
type CreateEmbeddingSpaceStmt struct {
	Name    string
	Options map[string]string
}

// AlterVertexAddEmbeddingStmt is ALTER VERTEX T ADD EMBEDDING ATTRIBUTE
// name (k = v, ...) or ... IN EMBEDDING SPACE space.
type AlterVertexAddEmbeddingStmt struct {
	VertexType string
	AttrName   string
	Options    map[string]string
	Space      string
}

// CreateQueryStmt is CREATE QUERY name(params) { body }.
type CreateQueryStmt struct {
	Name   string
	Params []ParamDef
	Body   []BodyStmt
}

// ParamDef is one query parameter.
type ParamDef struct {
	Name string
	Type ParamType
}

// ParamType enumerates supported parameter types.
type ParamType uint8

// Parameter types.
const (
	ParamInt ParamType = iota
	ParamFloat
	ParamString
	ParamBool
	ParamVector // LIST<FLOAT>
)

// String returns the GSQL spelling.
func (p ParamType) String() string {
	switch p {
	case ParamInt:
		return "INT"
	case ParamFloat:
		return "FLOAT"
	case ParamString:
		return "STRING"
	case ParamBool:
		return "BOOL"
	case ParamVector:
		return "LIST<FLOAT>"
	}
	return "?"
}

func (CreateVertexStmt) stmtNode()            {}
func (CreateEdgeStmt) stmtNode()              {}
func (CreateEmbeddingSpaceStmt) stmtNode()    {}
func (AlterVertexAddEmbeddingStmt) stmtNode() {}
func (CreateQueryStmt) stmtNode()             {}

// ---- Query body statements ----

// BodyStmt is any statement inside a query procedure body.
type BodyStmt interface{ bodyNode() }

// AccumDeclStmt declares accumulators, e.g.
// MapAccum<VERTEX, FLOAT> @@disMap;  SumAccum<INT> @cnt;
type AccumDeclStmt struct {
	Kind   string // SumAccum, MapAccum, SetAccum, HeapAccum, MaxAccum, MinAccum
	Types  []string
	Name   string
	Global bool // @@ vs @
}

// AssignStmt is `Var = <rhs>;` where rhs is a select block, a function
// call, a set operation, or a scalar expression.
type AssignStmt struct {
	Name string
	RHS  Expr // SelectExpr, CallExpr, SetOpExpr or scalar Expr
}

// AccumStmt is `@@acc += expr;`.
type AccumStmt struct {
	Name string
	Expr Expr
}

// PrintStmt is PRINT expr [, expr...];
type PrintStmt struct {
	Exprs []Expr
}

// ForeachStmt is FOREACH i IN RANGE[lo, hi] DO body END;
type ForeachStmt struct {
	Var    string
	Lo, Hi Expr
	Body   []BodyStmt
}

// IfStmt is IF cond THEN body [ELSE body] END;
type IfStmt struct {
	Cond Expr
	Then []BodyStmt
	Else []BodyStmt
}

// WhileStmt is WHILE cond LIMIT n DO body END;
type WhileStmt struct {
	Cond  Expr
	Limit Expr // nil means no explicit bound
	Body  []BodyStmt
}

func (AccumDeclStmt) bodyNode() {}
func (AssignStmt) bodyNode()    {}
func (AccumStmt) bodyNode()     {}
func (PrintStmt) bodyNode()     {}
func (ForeachStmt) bodyNode()   {}
func (IfStmt) bodyNode()        {}
func (WhileStmt) bodyNode()     {}

// ---- Expressions ----

// Expr is any expression.
type Expr interface{ exprNode() }

// IntLit / FloatLit / StringLit / BoolLit are literals.
type IntLit struct{ V int64 }

// FloatLit is a float literal.
type FloatLit struct{ V float64 }

// StringLit is a string literal.
type StringLit struct{ V string }

// BoolLit is TRUE or FALSE.
type BoolLit struct{ V bool }

// Ident references a parameter, variable or loop counter.
type Ident struct{ Name string }

// AttrRef is alias.attr inside a query block, or Type.attr in
// VectorSearch attribute lists.
type AttrRef struct {
	Base string
	Attr string
}

// AccumRef is @@name or @name.
type AccumRef struct {
	Name   string
	Global bool
}

// BinaryExpr applies an operator: AND OR = == != <> < <= > >= + - * /.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr is NOT x or -x.
type UnaryExpr struct {
	Op string
	X  Expr
}

// CallExpr is fn(args...) — VECTOR_DIST, VectorSearch, tg_louvain, ...
type CallExpr struct {
	Fn   string
	Args []Expr
}

// ListExpr is { a, b, c } (used for VectorSearch attribute lists).
type ListExpr struct{ Elems []Expr }

// MapLitExpr is { key: value, ... } (VectorSearch optional params).
type MapLitExpr struct {
	Keys   []string
	Values []Expr
}

// SetOpExpr is A UNION B / INTERSECT / MINUS over vertex set variables.
type SetOpExpr struct {
	Op   string
	L, R Expr
}

// SelectExpr is a query block:
//
//	SELECT aliases FROM pattern WHERE cond
//	  [ORDER BY VECTOR_DIST(a, b) LIMIT k]
type SelectExpr struct {
	Aliases []string
	Pattern *Pattern
	Where   Expr // nil when absent
	OrderBy *OrderBy
	Limit   Expr // nil when absent
}

// OrderBy holds the single supported ordering: by VECTOR_DIST or by an
// attribute.
type OrderBy struct {
	Expr Expr
	Desc bool
}

// Pattern is a linear path: node (edge node)*.
type Pattern struct {
	Nodes []NodeSpec
	Edges []EdgeSpec
}

// NodeSpec is (alias:Type) / (:Type) / (alias) / (:VarRef) where VarRef
// names a vertex-set variable from a prior block.
type NodeSpec struct {
	Alias string
	Label string // vertex type or vertex-set variable name
}

// EdgeSpec is -[alias:type]->, <-[:type]-, or -[:type]-.
type EdgeSpec struct {
	Alias string
	Label string
	Dir   EdgeDir
}

// EdgeDir is the syntactic arrow direction.
type EdgeDir uint8

// Edge directions.
const (
	DirRight EdgeDir = iota // -[]->
	DirLeft                 // <-[]-
	DirBoth                 // -[]-
)

func (IntLit) exprNode()     {}
func (FloatLit) exprNode()   {}
func (StringLit) exprNode()  {}
func (BoolLit) exprNode()    {}
func (Ident) exprNode()      {}
func (AttrRef) exprNode()    {}
func (AccumRef) exprNode()   {}
func (BinaryExpr) exprNode() {}
func (UnaryExpr) exprNode()  {}
func (CallExpr) exprNode()   {}
func (ListExpr) exprNode()   {}
func (MapLitExpr) exprNode() {}
func (SetOpExpr) exprNode()  {}
func (SelectExpr) exprNode() {}

// exprString renders an expression for plan display and error messages.
func exprString(e Expr) string {
	switch x := e.(type) {
	case IntLit:
		return intToString(x.V)
	case FloatLit:
		return trimFloat(x.V)
	case StringLit:
		return `"` + x.V + `"`
	case BoolLit:
		if x.V {
			return "true"
		}
		return "false"
	case Ident:
		return x.Name
	case AttrRef:
		return x.Base + "." + x.Attr
	case AccumRef:
		if x.Global {
			return "@@" + x.Name
		}
		return "@" + x.Name
	case BinaryExpr:
		return exprString(x.L) + " " + x.Op + " " + exprString(x.R)
	case UnaryExpr:
		return x.Op + " " + exprString(x.X)
	case CallExpr:
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = exprString(a)
		}
		return x.Fn + "(" + strings.Join(parts, ", ") + ")"
	case ListExpr:
		parts := make([]string, len(x.Elems))
		for i, a := range x.Elems {
			parts[i] = exprString(a)
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case MapLitExpr:
		parts := make([]string, len(x.Keys))
		for i := range x.Keys {
			parts[i] = x.Keys[i] + ": " + exprString(x.Values[i])
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case SetOpExpr:
		return exprString(x.L) + " " + x.Op + " " + exprString(x.R)
	case SelectExpr:
		return "SELECT " + strings.Join(x.Aliases, ", ")
	default:
		return "?"
	}
}

func intToString(v int64) string {
	return strconv.FormatInt(v, 10)
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
