package gsql

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/vectormath"
)

// MultiSet is the runtime value of a vector search spanning multiple
// vertex types: one VertexSet per type.
type MultiSet struct {
	Sets []*engine.VertexSet
}

// Size returns the total member count.
func (m *MultiSet) Size() int {
	n := 0
	for _, s := range m.Sets {
		n += s.Size()
	}
	return n
}

// Pair is one row of a vector similarity join result.
type Pair struct {
	SrcType  string
	Src      uint64
	DstType  string
	Dst      uint64
	Distance float32
}

// PairTable is the result of SELECT s, t ... ORDER BY VECTOR_DIST(s.e, t.e).
type PairTable struct {
	Rows []Pair
}

// binding maps pattern aliases to concrete vertices during predicate
// evaluation and path enumeration.
type boundVertex struct {
	typ string
	id  uint64
}

type binding map[string]boundVertex

// evalScalar evaluates an expression to a runtime value. bind may be nil
// outside query blocks. Vertex attributes resolve through the graph
// store; embedding attributes resolve through the env's cached search
// contexts.
func (ev *env) evalScalar(e Expr, bind binding) (any, error) {
	switch x := e.(type) {
	case IntLit:
		return x.V, nil
	case FloatLit:
		return x.V, nil
	case StringLit:
		return x.V, nil
	case BoolLit:
		return x.V, nil
	case Ident:
		if v, ok := ev.vars[x.Name]; ok {
			return v, nil
		}
		return nil, fmt.Errorf("gsql: unknown identifier %q", x.Name)
	case AccumRef:
		a, ok := ev.accums[x.Name]
		if !ok {
			return nil, fmt.Errorf("gsql: unknown accumulator @@%s", x.Name)
		}
		return a.value(), nil
	case AttrRef:
		b, ok := bind[x.Base]
		if !ok {
			return nil, fmt.Errorf("gsql: unbound alias %q in expression", x.Base)
		}
		// Embedding attribute?
		if vt, ok2 := ev.in.E.G.Schema().VertexType(b.typ); ok2 {
			if _, isEmb := vt.Embedding(x.Attr); isEmb {
				ctx, err := ev.embCtx(b.typ, x.Attr)
				if err != nil {
					return nil, err
				}
				v, ok3 := ctx.GetVector(b.id)
				if !ok3 {
					return nil, fmt.Errorf("gsql: vertex %d has no %s.%s vector", b.id, b.typ, x.Attr)
				}
				return v, nil
			}
		}
		v, err := ev.in.E.G.Attr(b.typ, b.id, x.Attr)
		if err != nil {
			return nil, err
		}
		return v, nil
	case UnaryExpr:
		v, err := ev.evalScalar(x.X, bind)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "NOT":
			b, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("gsql: NOT of non-boolean %T", v)
			}
			return !b, nil
		case "-":
			switch n := v.(type) {
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			}
			return nil, fmt.Errorf("gsql: negation of non-numeric %T", v)
		}
		return nil, fmt.Errorf("gsql: unknown unary operator %q", x.Op)
	case BinaryExpr:
		return ev.evalBinary(x, bind)
	case CallExpr:
		return ev.evalCall(x, bind)
	case ListExpr:
		// A list of floats evaluates to a vector; otherwise a []any.
		vec := make([]float32, 0, len(x.Elems))
		isVec := len(x.Elems) > 0
		vals := make([]any, 0, len(x.Elems))
		for _, el := range x.Elems {
			v, err := ev.evalScalar(el, bind)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			switch n := v.(type) {
			case int64:
				vec = append(vec, float32(n))
			case float64:
				vec = append(vec, float32(n))
			default:
				isVec = false
			}
		}
		if isVec {
			return vec, nil
		}
		return vals, nil
	case SetOpExpr:
		return ev.evalSetOp(x)
	default:
		return nil, fmt.Errorf("gsql: unsupported expression %T", e)
	}
}

func (ev *env) evalBinary(x BinaryExpr, bind binding) (any, error) {
	switch x.Op {
	case "AND", "OR":
		lv, err := ev.evalScalar(x.L, bind)
		if err != nil {
			return nil, err
		}
		lb, ok := lv.(bool)
		if !ok {
			return nil, fmt.Errorf("gsql: %s of non-boolean %T", x.Op, lv)
		}
		if x.Op == "AND" && !lb {
			return false, nil
		}
		if x.Op == "OR" && lb {
			return true, nil
		}
		rv, err := ev.evalScalar(x.R, bind)
		if err != nil {
			return nil, err
		}
		rb, ok := rv.(bool)
		if !ok {
			return nil, fmt.Errorf("gsql: %s of non-boolean %T", x.Op, rv)
		}
		return rb, nil
	}
	lv, err := ev.evalScalar(x.L, bind)
	if err != nil {
		return nil, err
	}
	rv, err := ev.evalScalar(x.R, bind)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "+", "-", "*", "/":
		return arith(x.Op, lv, rv)
	case "=", "!=", "<", "<=", ">", ">=":
		return compare(x.Op, lv, rv)
	}
	return nil, fmt.Errorf("gsql: unknown operator %q", x.Op)
}

func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case int64:
		return float64(n), true
	case float64:
		return n, true
	case float32:
		return float64(n), true
	}
	return 0, false
}

func arith(op string, l, r any) (any, error) {
	if li, lok := l.(int64); lok {
		if ri, rok := r.(int64); rok {
			switch op {
			case "+":
				return li + ri, nil
			case "-":
				return li - ri, nil
			case "*":
				return li * ri, nil
			case "/":
				if ri == 0 {
					return nil, fmt.Errorf("gsql: division by zero")
				}
				return li / ri, nil
			}
		}
	}
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if !lok || !rok {
		return nil, fmt.Errorf("gsql: arithmetic on non-numeric operands %T, %T", l, r)
	}
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, fmt.Errorf("gsql: division by zero")
		}
		return lf / rf, nil
	}
	return nil, fmt.Errorf("gsql: unknown arithmetic operator %q", op)
}

func compare(op string, l, r any) (bool, error) {
	// String comparison.
	if ls, ok := l.(string); ok {
		rs, ok := r.(string)
		if !ok {
			return false, fmt.Errorf("gsql: comparing string with %T", r)
		}
		switch op {
		case "=":
			return ls == rs, nil
		case "!=":
			return ls != rs, nil
		case "<":
			return ls < rs, nil
		case "<=":
			return ls <= rs, nil
		case ">":
			return ls > rs, nil
		case ">=":
			return ls >= rs, nil
		}
	}
	if lb, ok := l.(bool); ok {
		rb, ok := r.(bool)
		if !ok {
			return false, fmt.Errorf("gsql: comparing bool with %T", r)
		}
		switch op {
		case "=":
			return lb == rb, nil
		case "!=":
			return lb != rb, nil
		}
		return false, fmt.Errorf("gsql: ordering comparison on booleans")
	}
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if !lok || !rok {
		return false, fmt.Errorf("gsql: comparing %T with %T", l, r)
	}
	switch op {
	case "=":
		return lf == rf, nil
	case "!=":
		return lf != rf, nil
	case "<":
		return lf < rf, nil
	case "<=":
		return lf <= rf, nil
	case ">":
		return lf > rf, nil
	case ">=":
		return lf >= rf, nil
	}
	return false, fmt.Errorf("gsql: unknown comparison %q", op)
}

// evalCall evaluates function calls in scalar position.
func (ev *env) evalCall(x CallExpr, bind binding) (any, error) {
	switch x.Fn {
	case "VECTOR_DIST", "vector_dist", "dist":
		if len(x.Args) != 2 {
			return nil, fmt.Errorf("gsql: VECTOR_DIST takes 2 arguments")
		}
		av, err := ev.evalScalar(x.Args[0], bind)
		if err != nil {
			return nil, err
		}
		bv, err := ev.evalScalar(x.Args[1], bind)
		if err != nil {
			return nil, err
		}
		a, ok1 := av.([]float32)
		b, ok2 := bv.([]float32)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("gsql: VECTOR_DIST arguments must be vectors (got %T, %T)", av, bv)
		}
		if err := vectormath.CheckDims(a, b); err != nil {
			return nil, err
		}
		metric, err := ev.metricForDist(x)
		if err != nil {
			return nil, err
		}
		return float64(vectormath.Distance(metric, a, b)), nil
	case "VectorSearch":
		v, err := ev.execVectorSearch(x)
		if err != nil {
			return nil, err
		}
		return v, nil
	case "tg_louvain":
		return ev.execLouvain(x)
	case "size", "count":
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("gsql: %s takes 1 argument", x.Fn)
		}
		v, err := ev.evalScalar(x.Args[0], bind)
		if err != nil {
			return nil, err
		}
		switch s := v.(type) {
		case *engine.VertexSet:
			return int64(s.Size()), nil
		case *MultiSet:
			return int64(s.Size()), nil
		case *PairTable:
			return int64(len(s.Rows)), nil
		case []float32:
			return int64(len(s)), nil
		case string:
			return int64(len(s)), nil
		}
		return nil, fmt.Errorf("gsql: %s of unsupported type %T", x.Fn, v)
	case "abs":
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("gsql: abs takes 1 argument")
		}
		v, err := ev.evalScalar(x.Args[0], bind)
		if err != nil {
			return nil, err
		}
		switch n := v.(type) {
		case int64:
			if n < 0 {
				return -n, nil
			}
			return n, nil
		case float64:
			if n < 0 {
				return -n, nil
			}
			return n, nil
		}
		return nil, fmt.Errorf("gsql: abs of non-numeric %T", v)
	}
	return nil, fmt.Errorf("gsql: unknown function %q", x.Fn)
}

// metricForDist infers the metric for a VECTOR_DIST call from the first
// embedding attribute reference in its arguments, defaulting to L2.
func (ev *env) metricForDist(x CallExpr) (vectormath.Metric, error) {
	for _, a := range x.Args {
		if ar, ok := a.(AttrRef); ok {
			// ar.Base may be an alias; metric inference happens at the
			// call site where the binding typed it. Try type-name form.
			if vt, ok := ev.in.E.G.Schema().VertexType(ar.Base); ok {
				if ea, ok := vt.Embedding(ar.Attr); ok {
					return ea.Metric, nil
				}
			}
		}
	}
	if ev.distMetric != nil {
		return *ev.distMetric, nil
	}
	return vectormath.L2, nil
}

func (ev *env) evalSetOp(x SetOpExpr) (any, error) {
	lv, err := ev.evalScalar(x.L, nil)
	if err != nil {
		return nil, err
	}
	rv, err := ev.evalScalar(x.R, nil)
	if err != nil {
		return nil, err
	}
	ls, ok1 := lv.(*engine.VertexSet)
	rs, ok2 := rv.(*engine.VertexSet)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("gsql: %s requires vertex set operands (got %T, %T)", x.Op, lv, rv)
	}
	switch x.Op {
	case "UNION":
		return ls.Union(rs)
	case "INTERSECT":
		return ls.Intersect(rs)
	case "MINUS":
		return ls.Minus(rs)
	}
	return nil, fmt.Errorf("gsql: unknown set operator %q", x.Op)
}

// collectAliasRefs gathers the pattern aliases referenced by an
// expression.
func collectAliasRefs(e Expr, aliases map[string]bool, out map[string]bool) {
	switch x := e.(type) {
	case AttrRef:
		if aliases[x.Base] {
			out[x.Base] = true
		}
	case Ident:
		if aliases[x.Name] {
			out[x.Name] = true
		}
	case BinaryExpr:
		collectAliasRefs(x.L, aliases, out)
		collectAliasRefs(x.R, aliases, out)
	case UnaryExpr:
		collectAliasRefs(x.X, aliases, out)
	case CallExpr:
		for _, a := range x.Args {
			collectAliasRefs(a, aliases, out)
		}
	case ListExpr:
		for _, a := range x.Elems {
			collectAliasRefs(a, aliases, out)
		}
	case MapLitExpr:
		for _, a := range x.Values {
			collectAliasRefs(a, aliases, out)
		}
	}
}

// splitConjuncts flattens an AND tree.
func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}
