package gsql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/storage"
	"repro/internal/vectormath"
)

// Interpreter compiles and runs GSQL against one engine. DDL statements
// mutate the schema and register embedding stores; CREATE QUERY
// statements are stored and run via Run.
type Interpreter struct {
	E *engine.Engine
	// DefaultEf is the index search parameter used when a query does not
	// set one. Defaults to 64.
	DefaultEf int
	// LouvainSeed makes tg_louvain deterministic.
	LouvainSeed int64

	queries map[string]CreateQueryStmt
}

// NewInterpreter creates an interpreter over an engine.
func NewInterpreter(e *engine.Engine) *Interpreter {
	return &Interpreter{E: e, DefaultEf: 64, queries: make(map[string]CreateQueryStmt)}
}

// Stats reports the execution measurements Tables 3 and 4 use.
type Stats struct {
	// EndToEnd is total query execution time.
	EndToEnd time.Duration
	// VectorSearchTime is time spent inside vector search actions.
	VectorSearchTime time.Duration
	// Candidates is the candidate-set size of the last vector search
	// (the paper's "#candidate"): the pre-filter set size when one was
	// passed, otherwise the live candidate universe of the searched
	// type. Set on every vector-search branch, so a later unfiltered
	// block can never report a stale earlier value.
	Candidates int
	// Selectivity is the last filtered search's qualified-candidate
	// fraction as measured by the planner (0 when no filter applied).
	Selectivity float64
	// Plan is the planner's compact rendering of the last filtered
	// vector search ("" when no filter applied), e.g.
	// "sel=0.012 candidates=12/1024 segs[brute=1 bitmap=3 post=0 skip=4] ef=512".
	Plan string
}

// Output is one PRINT result.
type Output struct {
	Name  string
	Value any
}

// Result is the outcome of running one query.
type Result struct {
	Outputs []Output
	Plans   []string
	Stats   Stats
}

// Exec parses and applies top-level statements (DDL and query
// definitions).
func (in *Interpreter) Exec(src string) error {
	stmts, err := Parse(src)
	if err != nil {
		return err
	}
	for _, st := range stmts {
		if err := in.execTop(st); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interpreter) execTop(st Stmt) error {
	sch := in.E.G.Schema()
	switch s := st.(type) {
	case CreateVertexStmt:
		vt := graph.VertexType{Name: s.Name, PrimaryKey: s.PrimaryKey}
		for _, a := range s.Attrs {
			t, err := storage.ParseAttrType(a.Type)
			if err != nil {
				return err
			}
			vt.Attrs = append(vt.Attrs, storage.AttrSchema{Name: a.Name, Type: t})
		}
		return sch.AddVertexType(vt)
	case CreateEdgeStmt:
		return sch.AddEdgeType(graph.EdgeType{Name: s.Name, From: s.From, To: s.To, Directed: s.Directed})
	case CreateEmbeddingSpaceStmt:
		sp, err := spaceFromOptions(s.Name, s.Options)
		if err != nil {
			return err
		}
		return sch.AddEmbeddingSpace(sp)
	case AlterVertexAddEmbeddingStmt:
		attr := graph.EmbeddingAttr{Name: s.AttrName, Space: s.Space}
		if s.Space == "" {
			sp, err := spaceFromOptions("", s.Options)
			if err != nil {
				return err
			}
			attr.Dim = sp.Dim
			attr.Model = sp.Model
			attr.Index = sp.Index
			attr.DataType = sp.DataType
			attr.Metric = sp.Metric
		}
		if err := sch.AddEmbeddingAttr(s.VertexType, attr); err != nil {
			return err
		}
		vt, _ := sch.VertexType(s.VertexType)
		ea, _ := vt.Embedding(s.AttrName)
		_, err := in.E.Emb.Register(s.VertexType, ea)
		return err
	case CreateQueryStmt:
		if _, dup := in.queries[s.Name]; dup {
			return fmt.Errorf("gsql: query %q already defined", s.Name)
		}
		in.queries[s.Name] = s
		return nil
	}
	return fmt.Errorf("gsql: unsupported statement %T", st)
}

func spaceFromOptions(name string, opts map[string]string) (graph.EmbeddingSpace, error) {
	sp := graph.EmbeddingSpace{Name: name, Index: "HNSW", DataType: "FLOAT", Metric: vectormath.L2}
	for k, v := range opts {
		switch k {
		case "DIMENSION":
			d, err := strconv.Atoi(v)
			if err != nil {
				return sp, fmt.Errorf("gsql: bad DIMENSION %q", v)
			}
			sp.Dim = d
		case "MODEL":
			sp.Model = v
		case "INDEX":
			sp.Index = strings.ToUpper(v)
		case "DATATYPE":
			sp.DataType = strings.ToUpper(v)
		case "METRIC":
			m, err := vectormath.ParseMetric(strings.ToUpper(v))
			if err != nil {
				return sp, err
			}
			sp.Metric = m
		default:
			return sp, fmt.Errorf("gsql: unknown embedding option %q", k)
		}
	}
	if sp.Dim <= 0 {
		return sp, fmt.Errorf("gsql: embedding definition requires DIMENSION")
	}
	return sp, nil
}

// Queries returns the names of defined queries, sorted.
func (in *Interpreter) Queries() []string {
	out := make([]string, 0, len(in.queries))
	for n := range in.queries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// env is the per-run execution state.
type env struct {
	in         *Interpreter
	tid        uint64 // snapshot TID as uint64 to avoid importing txn here
	vars       map[string]any
	accums     map[string]*accumVal
	out        *Result
	embCtxs    map[string]*core.SearchContext
	distMetric *vectormath.Metric // metric hint for alias-based VECTOR_DIST
}

// Run executes a defined query with the given arguments. Vector arguments
// accept []float32, []float64 or []any of numbers.
func (in *Interpreter) Run(name string, args map[string]any) (*Result, error) {
	q, ok := in.queries[name]
	if !ok {
		return nil, fmt.Errorf("gsql: unknown query %q", name)
	}
	ev := &env{
		in:      in,
		tid:     uint64(in.E.Mgr.Visible()),
		vars:    make(map[string]any),
		accums:  make(map[string]*accumVal),
		out:     &Result{},
		embCtxs: make(map[string]*core.SearchContext),
	}
	defer ev.closeCtxs()
	for _, p := range q.Params {
		raw, ok := args[p.Name]
		if !ok {
			return nil, fmt.Errorf("gsql: query %q missing argument %q", name, p.Name)
		}
		v, err := coerceParam(p, raw)
		if err != nil {
			return nil, err
		}
		ev.vars[p.Name] = v
	}
	if len(args) > len(q.Params) {
		for k := range args {
			found := false
			for _, p := range q.Params {
				if p.Name == k {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("gsql: query %q has no parameter %q", name, k)
			}
		}
	}
	start := time.Now()
	if err := ev.execBody(q.Body); err != nil {
		return nil, err
	}
	ev.out.Stats.EndToEnd = time.Since(start)
	return ev.out, nil
}

func coerceParam(p ParamDef, raw any) (any, error) {
	switch p.Type {
	case ParamInt:
		switch v := raw.(type) {
		case int:
			return int64(v), nil
		case int64:
			return v, nil
		}
	case ParamFloat:
		switch v := raw.(type) {
		case float64:
			return v, nil
		case int:
			return float64(v), nil
		case int64:
			return float64(v), nil
		}
	case ParamString:
		if v, ok := raw.(string); ok {
			return v, nil
		}
	case ParamBool:
		if v, ok := raw.(bool); ok {
			return v, nil
		}
	case ParamVector:
		switch v := raw.(type) {
		case []float32:
			return v, nil
		case []float64:
			out := make([]float32, len(v))
			for i, f := range v {
				out[i] = float32(f)
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("gsql: argument %q: cannot use %T as %s", p.Name, raw, p.Type)
}

func (ev *env) closeCtxs() {
	for _, c := range ev.embCtxs {
		c.Close()
	}
}

// embCtx returns a cached MVCC search context for one embedding attribute
// so repeated GetVector calls share a snapshot.
func (ev *env) embCtx(vertexType, attr string) (*core.SearchContext, error) {
	key := core.AttrKey(vertexType, attr)
	if c, ok := ev.embCtxs[key]; ok {
		return c, nil
	}
	store, ok := ev.in.E.Emb.Store(key)
	if !ok {
		return nil, fmt.Errorf("gsql: embedding attribute %s is not materialized", key)
	}
	c := store.BeginSearch(txnTID(ev.tid))
	ev.embCtxs[key] = c
	return c, nil
}

func (ev *env) execBody(body []BodyStmt) error {
	for _, st := range body {
		if err := ev.execStmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (ev *env) execStmt(st BodyStmt) error {
	switch s := st.(type) {
	case AccumDeclStmt:
		a, err := newAccum(s)
		if err != nil {
			return err
		}
		ev.accums[s.Name] = a
		return nil
	case AssignStmt:
		v, err := ev.evalAssignRHS(s.RHS)
		if err != nil {
			return err
		}
		ev.vars[s.Name] = v
		return nil
	case AccumStmt:
		a, ok := ev.accums[s.Name]
		if !ok {
			return fmt.Errorf("gsql: unknown accumulator @@%s", s.Name)
		}
		v, err := ev.evalScalar(s.Expr, nil)
		if err != nil {
			return err
		}
		return a.add(v)
	case PrintStmt:
		for _, e := range s.Exprs {
			v, err := ev.evalScalar(e, nil)
			if err != nil {
				return err
			}
			ev.out.Outputs = append(ev.out.Outputs, Output{Name: exprString(e), Value: v})
		}
		return nil
	case ForeachStmt:
		lo, err := ev.evalInt(s.Lo)
		if err != nil {
			return err
		}
		hi, err := ev.evalInt(s.Hi)
		if err != nil {
			return err
		}
		saved, had := ev.vars[s.Var]
		for i := lo; i <= hi; i++ {
			ev.vars[s.Var] = i
			if err := ev.execBody(s.Body); err != nil {
				return err
			}
		}
		if had {
			ev.vars[s.Var] = saved
		} else {
			delete(ev.vars, s.Var)
		}
		return nil
	case IfStmt:
		c, err := ev.evalScalar(s.Cond, nil)
		if err != nil {
			return err
		}
		cb, ok := c.(bool)
		if !ok {
			return fmt.Errorf("gsql: IF condition is %T, not boolean", c)
		}
		if cb {
			return ev.execBody(s.Then)
		}
		return ev.execBody(s.Else)
	case WhileStmt:
		limit := int64(1 << 20)
		if s.Limit != nil {
			l, err := ev.evalInt(s.Limit)
			if err != nil {
				return err
			}
			limit = l
		}
		for iter := int64(0); iter < limit; iter++ {
			c, err := ev.evalScalar(s.Cond, nil)
			if err != nil {
				return err
			}
			cb, ok := c.(bool)
			if !ok {
				return fmt.Errorf("gsql: WHILE condition is %T, not boolean", c)
			}
			if !cb {
				return nil
			}
			if err := ev.execBody(s.Body); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("gsql: unsupported statement %T", st)
}

func (ev *env) evalInt(e Expr) (int64, error) {
	v, err := ev.evalScalar(e, nil)
	if err != nil {
		return 0, err
	}
	switch n := v.(type) {
	case int64:
		return n, nil
	case float64:
		return int64(n), nil
	}
	return 0, fmt.Errorf("gsql: expected integer, got %T", v)
}

func (ev *env) evalAssignRHS(rhs Expr) (any, error) {
	switch x := rhs.(type) {
	case SelectExpr:
		return ev.execSelect(x)
	default:
		return ev.evalScalar(rhs, nil)
	}
}

// execLouvain implements tg_louvain([vertexTypes], [edgeTypes]): community
// detection writing the community id into the `cid` attribute and
// returning the community count.
func (ev *env) execLouvain(x CallExpr) (any, error) {
	if len(x.Args) != 2 {
		return nil, fmt.Errorf("gsql: tg_louvain takes 2 arguments")
	}
	vts, err := ev.stringList(x.Args[0])
	if err != nil {
		return nil, err
	}
	ets, err := ev.stringList(x.Args[1])
	if err != nil {
		return nil, err
	}
	if len(vts) != 1 || len(ets) != 1 {
		return nil, fmt.Errorf("gsql: tg_louvain supports one vertex type and one edge type")
	}
	comm, n, err := algorithms.Louvain(ev.in.E.G, vts[0], ets[0], ev.in.LouvainSeed)
	if err != nil {
		return nil, err
	}
	for id, c := range comm {
		if err := ev.in.E.G.SetAttr(vts[0], id, "cid", int64(c)); err != nil {
			return nil, fmt.Errorf("gsql: tg_louvain requires an INT attribute `cid` on %s: %w", vts[0], err)
		}
	}
	return int64(n), nil
}

func (ev *env) stringList(e Expr) ([]string, error) {
	le, ok := e.(ListExpr)
	if !ok {
		return nil, fmt.Errorf("gsql: expected a string list, got %T", e)
	}
	var out []string
	for _, el := range le.Elems {
		v, err := ev.evalScalar(el, nil)
		if err != nil {
			return nil, err
		}
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("gsql: expected string in list, got %T", v)
		}
		out = append(out, s)
	}
	return out, nil
}

// accumVal is a runtime accumulator.
type accumVal struct {
	kind string
	elem string // INT or FLOAT for scalar accums
	i    int64
	f    float64
	m    map[uint64]float64
	set  map[uint64]struct{}
	init bool
}

func newAccum(d AccumDeclStmt) (*accumVal, error) {
	a := &accumVal{kind: d.Kind}
	switch d.Kind {
	case "SumAccum", "MaxAccum", "MinAccum":
		if len(d.Types) != 1 || (d.Types[0] != "INT" && d.Types[0] != "FLOAT") {
			return nil, fmt.Errorf("gsql: %s requires <INT> or <FLOAT>", d.Kind)
		}
		a.elem = d.Types[0]
	case "MapAccum":
		if len(d.Types) != 2 || d.Types[0] != "VERTEX" || d.Types[1] != "FLOAT" {
			return nil, fmt.Errorf("gsql: MapAccum supports <VERTEX, FLOAT>")
		}
		a.m = map[uint64]float64{}
	case "SetAccum":
		if len(d.Types) != 1 || d.Types[0] != "VERTEX" {
			return nil, fmt.Errorf("gsql: SetAccum supports <VERTEX>")
		}
		a.set = map[uint64]struct{}{}
	default:
		return nil, fmt.Errorf("gsql: unsupported accumulator kind %q", d.Kind)
	}
	return a, nil
}

func (a *accumVal) add(v any) error {
	switch a.kind {
	case "SumAccum":
		f, ok := toFloat(v)
		if !ok {
			return fmt.Errorf("gsql: += of %T into SumAccum", v)
		}
		if a.elem == "INT" {
			a.i += int64(f)
		} else {
			a.f += f
		}
		return nil
	case "MaxAccum", "MinAccum":
		f, ok := toFloat(v)
		if !ok {
			return fmt.Errorf("gsql: += of %T into %s", v, a.kind)
		}
		if !a.init {
			a.f = f
			a.init = true
			return nil
		}
		if (a.kind == "MaxAccum" && f > a.f) || (a.kind == "MinAccum" && f < a.f) {
			a.f = f
		}
		return nil
	case "SetAccum":
		switch id := v.(type) {
		case int64:
			a.set[uint64(id)] = struct{}{}
			return nil
		case uint64:
			a.set[id] = struct{}{}
			return nil
		}
		return fmt.Errorf("gsql: += of %T into SetAccum", v)
	}
	return fmt.Errorf("gsql: += unsupported for %s", a.kind)
}

func (a *accumVal) value() any {
	switch a.kind {
	case "SumAccum":
		if a.elem == "INT" {
			return a.i
		}
		return a.f
	case "MaxAccum", "MinAccum":
		return a.f
	case "MapAccum":
		return a.m
	case "SetAccum":
		return a.set
	}
	return nil
}

// setDistances installs VectorSearch distanceMap output.
func (a *accumVal) setDistances(d map[uint64]float64) error {
	if a.kind != "MapAccum" {
		return fmt.Errorf("gsql: distanceMap requires a MapAccum<VERTEX, FLOAT>")
	}
	for k, v := range d {
		a.m[k] = v
	}
	return nil
}
