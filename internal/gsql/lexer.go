// Package gsql implements the GSQL subset TigerVector extends (paper
// Sec. 5): declarative top-k vector search via ORDER BY VECTOR_DIST ...
// LIMIT, range search via WHERE VECTOR_DIST < t, filtered vector search,
// vector search on graph patterns, vector similarity join on graph
// patterns, the composable VectorSearch() function, vertex set variables,
// global accumulators, and the DDL for vertex/edge types, embedding
// attributes and embedding spaces.
//
// The package compiles query text to an AST (lexer.go, parser.go),
// validates it against the schema including the embedding compatibility
// static analysis (sema.go), produces paper-style action plans (plan.go)
// and interprets them over the MPP engine (exec.go).
package gsql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokPunct // ( ) { } [ ] , ; . : = < > <= >= != <> == + - * / -> <- @ @@
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// keywords are case-insensitive in GSQL; the lexer normalizes them to
// upper case.
var keywords = map[string]bool{
	"CREATE": true, "VERTEX": true, "EDGE": true, "DIRECTED": true,
	"UNDIRECTED": true, "ALTER": true, "ADD": true, "EMBEDDING": true,
	"ATTRIBUTE": true, "SPACE": true, "IN": true, "QUERY": true,
	"SELECT": true, "FROM": true, "WHERE": true, "ORDER": true, "BY": true,
	"LIMIT": true, "PRINT": true, "AND": true, "OR": true, "NOT": true,
	"TRUE": true, "FALSE": true, "FOREACH": true, "RANGE": true, "DO": true,
	"END": true, "IF": true, "THEN": true, "ELSE": true, "WHILE": true,
	"UNION": true, "INTERSECT": true, "MINUS": true, "INT": true,
	"FLOAT": true, "STRING": true, "BOOL": true, "LIST": true,
	"PRIMARY": true, "KEY": true, "TO": true, "ASC": true, "DESC": true,
	"DISTRIBUTED": true, "RETURNS": true,
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes src. GSQL comments (-- to end of line and /* */) are
// skipped.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '-' && l.peek(1) == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peek(1) == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("gsql: line %d: unterminated block comment", l.line)
			}
			l.line += strings.Count(l.src[l.pos:l.pos+end+4], "\n")
			l.pos += end + 4
		case c == '"' || c == '\'':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case unicode.IsDigit(rune(c)):
			l.lexNumber()
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		default:
			if err := l.lexPunct(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos, line: l.line})
	return l.toks, nil
}

func (l *lexer) peek(ahead int) byte {
	if l.pos+ahead < len(l.src) {
		return l.src[l.pos+ahead]
	}
	return 0
}

func (l *lexer) emit(kind tokenKind, text string) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: l.pos, line: l.line})
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos + 1
	i := start
	var sb strings.Builder
	for i < len(l.src) {
		if l.src[i] == '\\' && i+1 < len(l.src) {
			sb.WriteByte(l.src[i+1])
			i += 2
			continue
		}
		if l.src[i] == quote {
			l.emit(tokString, sb.String())
			l.pos = i + 1
			return nil
		}
		if l.src[i] == '\n' {
			return fmt.Errorf("gsql: line %d: newline in string literal", l.line)
		}
		sb.WriteByte(l.src[i])
		i++
	}
	return fmt.Errorf("gsql: line %d: unterminated string literal", l.line)
}

func (l *lexer) lexNumber() {
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) {
			l.pos++
			continue
		}
		if c == '.' && !isFloat && unicode.IsDigit(rune(l.peek(1))) {
			isFloat = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && (unicode.IsDigit(rune(l.peek(1))) || ((l.peek(1) == '-' || l.peek(1) == '+') && unicode.IsDigit(rune(l.peek(2))))) {
			isFloat = true
			l.pos++
			if l.src[l.pos] == '-' || l.src[l.pos] == '+' {
				l.pos++
			}
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	if isFloat {
		l.toks = append(l.toks, token{kind: tokFloat, text: text, pos: start, line: l.line})
	} else {
		l.toks = append(l.toks, token{kind: tokInt, text: text, pos: start, line: l.line})
	}
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' {
			l.pos++
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: upper, pos: start, line: l.line})
		return
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: text, pos: start, line: l.line})
}

// twoCharPuncts are matched before single characters.
var twoCharPuncts = []string{"<=", ">=", "!=", "<>", "==", "->", "<-", "@@", "+="}

func (l *lexer) lexPunct() error {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		for _, p := range twoCharPuncts {
			if two == p {
				l.emit(tokPunct, p)
				l.pos += 2
				return nil
			}
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', '{', '}', '[', ']', ',', ';', '.', ':', '=', '<', '>', '+', '-', '*', '/', '@':
		l.emit(tokPunct, string(c))
		l.pos++
		return nil
	}
	return fmt.Errorf("gsql: line %d: unexpected character %q", l.line, c)
}
