package gsql

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/storage"
	"repro/internal/txn"
)

// fixture builds the LDBC-flavoured schema and data used across tests via
// the GSQL DDL path itself.
type fixture struct {
	in    *Interpreter
	posts []uint64
	vecs  [][]float32
}

const ddl = `
CREATE VERTEX Person (id INT PRIMARY KEY, firstName STRING, cid INT);
CREATE VERTEX Post (id INT PRIMARY KEY, language STRING, length INT);
CREATE VERTEX Comment (id INT PRIMARY KEY, country STRING);
CREATE UNDIRECTED EDGE knows (FROM Person, TO Person);
CREATE DIRECTED EDGE hasCreator (FROM Post, TO Person);
CREATE DIRECTED EDGE commentHasCreator (FROM Comment, TO Person);
CREATE EMBEDDING SPACE emb_space (DIMENSION = 8, MODEL = GPT4, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);
ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE content_emb IN EMBEDDING SPACE emb_space;
ALTER VERTEX Comment ADD EMBEDDING ATTRIBUTE content_emb IN EMBEDDING SPACE emb_space;
`

func newFixture(t *testing.T, numPosts int) *fixture {
	t.Helper()
	sch := graph.NewSchema()
	g := graph.NewStore(sch, 16)
	svc := core.NewService(t.TempDir(), 16, 1)
	mgr := txn.NewManager(svc, nil)
	e := engine.New(g, svc, mgr)
	in := NewInterpreter(e)
	if err := in.Exec(ddl); err != nil {
		t.Fatal(err)
	}

	// People 0..9, Alice = 0; knows chain 0-1, 0-2, 1-3.
	for i := 0; i < 10; i++ {
		name := map[int]string{0: "Alice", 1: "Bob", 2: "Carol", 3: "Dave"}[i]
		if name == "" {
			name = "P" + string(rune('0'+i))
		}
		g.AddVertex("Person", map[string]storage.Value{"id": int64(i), "firstName": name})
	}
	pid := func(i int) uint64 { id, _ := g.VertexByKey("Person", int64(i)); return id }
	g.AddEdge("knows", pid(0), pid(1))
	g.AddEdge("knows", pid(0), pid(2))
	g.AddEdge("knows", pid(1), pid(3))

	f := &fixture{in: in}
	r := rand.New(rand.NewSource(7))
	postStore, _ := svc.Store("Post.content_emb")
	commentStore, _ := svc.Store("Comment.content_emb")
	var cids []uint64
	var cvecs [][]float32
	for i := 0; i < numPosts; i++ {
		lang := "English"
		if i%3 == 0 {
			lang = "French"
		}
		id, err := g.AddVertex("Post", map[string]storage.Value{
			"id": int64(1000 + i), "language": lang, "length": int64(i * 100)})
		if err != nil {
			t.Fatal(err)
		}
		g.AddEdge("hasCreator", id, pid(i%10))
		v := make([]float32, 8)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		f.posts = append(f.posts, id)
		f.vecs = append(f.vecs, v)

		country := "United States"
		if i%2 == 1 {
			country = "France"
		}
		cid, _ := g.AddVertex("Comment", map[string]storage.Value{"id": int64(5000 + i), "country": country})
		g.AddEdge("commentHasCreator", cid, pid(i%10))
		cv := make([]float32, 8)
		for j := range cv {
			cv[j] = float32(r.NormFloat64())
		}
		cids = append(cids, cid)
		cvecs = append(cvecs, cv)
	}
	if err := postStore.BulkLoad(f.posts, f.vecs, 4, 1); err != nil {
		t.Fatal(err)
	}
	if err := commentStore.BulkLoad(cids, cvecs, 4, 1); err != nil {
		t.Fatal(err)
	}
	mgr.Begin().Commit()
	return f
}

func defineAndRun(t *testing.T, f *fixture, querySrc, name string, args map[string]any) *Result {
	t.Helper()
	if err := f.in.Exec(querySrc); err != nil {
		t.Fatalf("define %s: %v", name, err)
	}
	res, err := f.in.Run(name, args)
	if err != nil {
		t.Fatalf("run %s: %v", name, err)
	}
	return res
}

func vecArg(v []float32) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}

func TestDDLBuildsSchemaAndStores(t *testing.T) {
	f := newFixture(t, 10)
	sch := f.in.E.G.Schema()
	vt, ok := sch.VertexType("Post")
	if !ok {
		t.Fatal("Post type missing")
	}
	ea, ok := vt.Embedding("content_emb")
	if !ok || ea.Dim != 8 || ea.Model != "GPT4" || ea.Space != "emb_space" {
		t.Fatalf("embedding attr = %+v", ea)
	}
	if _, ok := f.in.E.Emb.Store("Post.content_emb"); !ok {
		t.Fatal("embedding store not registered by DDL")
	}
	if _, ok := sch.EdgeType("knows"); !ok {
		t.Fatal("knows edge missing")
	}
}

func TestDDLErrors(t *testing.T) {
	f := newFixture(t, 1)
	for _, bad := range []string{
		`CREATE VERTEX Person (id INT PRIMARY KEY);`,                            // duplicate
		`ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE e2 (MODEL = x);`,             // no dimension
		`ALTER VERTEX Nope ADD EMBEDDING ATTRIBUTE e (DIMENSION = 4);`,          // unknown type
		`CREATE EDGE bad (FROM Nope, TO Person);`,                               // unknown endpoint
		`ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE e3 IN EMBEDDING SPACE nope;`, // unknown space
	} {
		if err := f.in.Exec(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

// Paper Sec. 5.1: pure top-k vector search.
func TestPureTopKSearch(t *testing.T) {
	f := newFixture(t, 100)
	res := defineAndRun(t, f, `
CREATE QUERY topk (LIST<FLOAT> qv, INT k) {
  Res = SELECT s FROM (s:Post) ORDER BY VECTOR_DIST(s.content_emb, qv) LIMIT k;
  PRINT Res;
}`, "topk", map[string]any{"qv": vecArg(f.vecs[13]), "k": 5})
	set := res.Outputs[0].Value.(*engine.VertexSet)
	if set.Size() != 5 || !set.Contains(f.posts[13]) {
		t.Fatalf("topk = %v", set.IDs())
	}
	// Plan shape (paper Sec. 5.1).
	if len(res.Plans) == 0 || !strings.Contains(res.Plans[0], "EmbeddingAction[Top 5, {s.content_emb}, query_vector]") {
		t.Fatalf("plan = %q", res.Plans)
	}
}

// Paper Sec. 5.1: range search via WHERE VECTOR_DIST < threshold.
func TestRangeSearch(t *testing.T) {
	f := newFixture(t, 60)
	res := defineAndRun(t, f, `
CREATE QUERY rangeq (LIST<FLOAT> qv, FLOAT th) {
  Res = SELECT s FROM (s:Post) WHERE VECTOR_DIST(s.content_emb, qv) < th;
  PRINT Res;
}`, "rangeq", map[string]any{"qv": vecArg(f.vecs[7]), "th": 0.001})
	set := res.Outputs[0].Value.(*engine.VertexSet)
	if set.Size() != 1 || !set.Contains(f.posts[7]) {
		t.Fatalf("range = %v", set.IDs())
	}
	if !strings.Contains(res.Plans[0], "EmbeddingAction[Range") {
		t.Fatalf("plan = %q", res.Plans[0])
	}
}

// Paper Sec. 5.2: filtered vector search with attribute predicate.
func TestFilteredVectorSearch(t *testing.T) {
	f := newFixture(t, 90)
	res := defineAndRun(t, f, `
CREATE QUERY filtered (LIST<FLOAT> qv, INT k) {
  Res = SELECT s FROM (s:Post)
        WHERE s.language = "English"
        ORDER BY VECTOR_DIST(s.content_emb, qv) LIMIT k;
  PRINT Res;
}`, "filtered", map[string]any{"qv": vecArg(f.vecs[0]), "k": 10})
	set := res.Outputs[0].Value.(*engine.VertexSet)
	if set.Size() != 10 {
		t.Fatalf("filtered size = %d", set.Size())
	}
	for _, id := range set.IDs() {
		v, _ := f.in.E.G.Attr("Post", id, "language")
		if v.(string) != "English" {
			t.Fatalf("filter violated on %d", id)
		}
	}
	if res.Stats.Candidates != 60 {
		t.Fatalf("candidates = %d, want 60", res.Stats.Candidates)
	}
	// Pre-filter plan: VertexAction below EmbeddingAction.
	plan := res.Plans[0]
	if !strings.Contains(plan, "EmbeddingAction[Top 10, {s.content_emb}, query_vector]") ||
		!strings.Contains(plan, `VertexAction[Post:s {s.language = "English"}]`) {
		t.Fatalf("plan = %q", plan)
	}
	if strings.Index(plan, "EmbeddingAction") > strings.Index(plan, "VertexAction") {
		t.Fatalf("plan order wrong (post-filter?): %q", plan)
	}
	if res.Stats.VectorSearchTime <= 0 || res.Stats.EndToEnd <= 0 {
		t.Fatal("stats not measured")
	}
}

// Paper Sec. 5.3: vector search on graph patterns.
func TestVectorSearchOnGraphPattern(t *testing.T) {
	f := newFixture(t, 90)
	res := defineAndRun(t, f, `
CREATE QUERY pattern_q (LIST<FLOAT> qv, INT k) {
  Res = SELECT t
        FROM (s:Person) -[:knows]-> (:Person) <-[:hasCreator]- (t:Post)
        WHERE s.firstName = "Alice" AND t.length > 1000
        ORDER BY VECTOR_DIST(t.content_emb, qv) LIMIT k;
  PRINT Res;
}`, "pattern_q", map[string]any{"qv": vecArg(f.vecs[41]), "k": 3})
	set := res.Outputs[0].Value.(*engine.VertexSet)
	if set.Size() == 0 || set.Size() > 3 {
		t.Fatalf("pattern result size = %d", set.Size())
	}
	// Every result must be a long post created by a friend of Alice
	// (persons 1 and 2 -> posts i%10 in {1,2} with i*100 > 1000).
	for _, id := range set.IDs() {
		lv, _ := f.in.E.G.Attr("Post", id, "length")
		if lv.(int64) <= 1000 {
			t.Fatalf("short post %d in result", id)
		}
		pidv, _ := f.in.E.G.Attr("Post", id, "id")
		i := int(pidv.(int64) - 1000)
		if i%10 != 1 && i%10 != 2 {
			t.Fatalf("post %d not by Alice's friends", id)
		}
	}
	// Plan mirrors the paper's Sec. 5.3 example: EmbeddingAction on top,
	// then two EdgeActions, then the VertexAction seed.
	lines := strings.Split(res.Plans[0], "\n")
	if len(lines) != 4 ||
		!strings.HasPrefix(lines[0], "EmbeddingAction[Top 3") ||
		!strings.Contains(lines[1], "<hasCreator") ||
		!strings.Contains(lines[2], "knows") ||
		!strings.Contains(lines[3], `VertexAction[Person:s {s.firstName = "Alice"}]`) {
		t.Fatalf("plan = %q", res.Plans[0])
	}
	if res.Stats.Candidates == 0 {
		t.Fatal("candidate count not recorded")
	}
}

// Paper Sec. 5.4: vector similarity join on graph patterns.
func TestSimilarityJoin(t *testing.T) {
	f := newFixture(t, 60)
	res := defineAndRun(t, f, `
CREATE QUERY simjoin (INT k) {
  Pairs = SELECT s, t
          FROM (s:Comment) -[:commentHasCreator]-> (u:Person)
               -[:knows]-> (v:Person) <-[:commentHasCreator]- (t:Comment)
          WHERE u.firstName = "Alice"
          ORDER BY VECTOR_DIST(s.content_emb, t.content_emb)
          LIMIT k;
  PRINT Pairs;
}`, "simjoin", map[string]any{"k": 4})
	table := res.Outputs[0].Value.(*PairTable)
	if len(table.Rows) == 0 || len(table.Rows) > 4 {
		t.Fatalf("join rows = %d", len(table.Rows))
	}
	for i, row := range table.Rows {
		if i > 0 && table.Rows[i-1].Distance > row.Distance {
			t.Fatal("join rows not sorted")
		}
		// s must be a comment by Alice (person 0): comments i%10==0.
		sv, _ := f.in.E.G.Attr("Comment", row.Src, "id")
		if int(sv.(int64)-5000)%10 != 0 {
			t.Fatalf("src comment %d not by Alice", row.Src)
		}
		// t by a friend of Alice (persons 1, 2).
		tv, _ := f.in.E.G.Attr("Comment", row.Dst, "id")
		ti := int(tv.(int64) - 5000)
		if ti%10 != 1 && ti%10 != 2 {
			t.Fatalf("dst comment %d not by Alice's friends", row.Dst)
		}
	}
	if !strings.Contains(res.Plans[0], "@@heapAcc += (s, t, dist(s.content_emb, t.content_emb))") {
		t.Fatalf("plan = %q", res.Plans[0])
	}
}

// Paper Sec. 5.5, Q1: vector search across multiple vertex types.
func TestVectorSearchMultiType(t *testing.T) {
	f := newFixture(t, 40)
	res := defineAndRun(t, f, `
CREATE QUERY q1 (LIST<FLOAT> topic_emb, INT k) {
  Msgs = VectorSearch({Comment.content_emb, Post.content_emb}, topic_emb, k);
  PRINT Msgs;
}`, "q1", map[string]any{"topic_emb": vecArg(f.vecs[3]), "k": 6})
	switch v := res.Outputs[0].Value.(type) {
	case *MultiSet:
		if v.Size() != 6 {
			t.Fatalf("multiset size = %d", v.Size())
		}
	case *engine.VertexSet:
		if v.Size() != 6 {
			t.Fatalf("set size = %d", v.Size())
		}
	default:
		t.Fatalf("unexpected result type %T", v)
	}
	if !strings.Contains(res.Plans[0], "{Comment.content_emb, Post.content_emb}") {
		t.Fatalf("plan = %q", res.Plans[0])
	}
}

// Incompatible multi-type search is a semantic error (paper Sec. 4.1).
func TestVectorSearchIncompatibleTypes(t *testing.T) {
	f := newFixture(t, 5)
	if err := f.in.Exec(`ALTER VERTEX Person ADD EMBEDDING ATTRIBUTE face (DIMENSION = 16, MODEL = CLIP);`); err != nil {
		t.Fatal(err)
	}
	if err := f.in.Exec(`
CREATE QUERY badq (LIST<FLOAT> qv, INT k) {
  M = VectorSearch({Post.content_emb, Person.face}, qv, k);
  PRINT M;
}`); err != nil {
		t.Fatal(err)
	}
	_, err := f.in.Run("badq", map[string]any{"qv": vecArg(f.vecs[0]), "k": 1})
	if err == nil || !strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("incompatible search err = %v", err)
	}
}

// Paper Sec. 5.5, Q2: VectorSearch output feeding a graph block.
func TestQueryCompositionVectorThenGraph(t *testing.T) {
	f := newFixture(t, 50)
	res := defineAndRun(t, f, `
CREATE QUERY q2 (LIST<FLOAT> topic_emb, INT k) {
  TopKPosts = VectorSearch({Post.content_emb}, topic_emb, k);
  Authors = SELECT p FROM (:TopKPosts) -[:hasCreator]-> (p:Person);
  PRINT Authors;
}`, "q2", map[string]any{"topic_emb": vecArg(f.vecs[12]), "k": 5})
	authors := res.Outputs[0].Value.(*engine.VertexSet)
	if authors.Type != "Person" || authors.Size() == 0 || authors.Size() > 5 {
		t.Fatalf("authors = %v", authors.IDs())
	}
}

// Paper Sec. 5.5, Q3: graph block output as VectorSearch filter plus
// distance map and ef.
func TestQueryCompositionGraphThenVector(t *testing.T) {
	f := newFixture(t, 50)
	res := defineAndRun(t, f, `
CREATE QUERY q3 (LIST<FLOAT> topic_emb, INT k) {
  MapAccum<VERTEX, FLOAT> @@disMap;
  USComments = SELECT t FROM (t:Comment) WHERE t.country = "United States";
  TopKComments = VectorSearch({Comment.content_emb}, topic_emb, k,
                              {filter: USComments, ef: 200, distanceMap: @@disMap});
  PRINT TopKComments;
  PRINT @@disMap;
}`, "q3", map[string]any{"topic_emb": vecArg(f.vecs[5]), "k": 7})
	set := res.Outputs[0].Value.(*engine.VertexSet)
	if set.Size() != 7 {
		t.Fatalf("US top-k = %d", set.Size())
	}
	for _, id := range set.IDs() {
		v, _ := f.in.E.G.Attr("Comment", id, "country")
		if v.(string) != "United States" {
			t.Fatalf("non-US comment %d", id)
		}
	}
	dm := res.Outputs[1].Value.(map[uint64]float64)
	if len(dm) != 7 {
		t.Fatalf("distance map = %v", dm)
	}
	for _, id := range set.IDs() {
		if _, ok := dm[id]; !ok {
			t.Fatalf("distance map missing id %d", id)
		}
	}
	if res.Stats.Candidates != 25 {
		t.Fatalf("candidates = %d, want 25 US comments", res.Stats.Candidates)
	}
}

// Paper Sec. 5.5, Q4: Louvain + per-community vector search in FOREACH.
func TestQ4CommunityVectorSearch(t *testing.T) {
	f := newFixture(t, 40)
	res := defineAndRun(t, f, `
CREATE QUERY q4 (LIST<FLOAT> topic_emb, INT k) {
  C_num = tg_louvain(["Person"], ["knows"]);
  FOREACH i IN RANGE[0, C_num - 1] DO
    CommunityPosts = SELECT t FROM (s:Person) <-[:hasCreator]- (t:Post) WHERE s.cid = i;
    TopKPosts = VectorSearch({Post.content_emb}, topic_emb, k, {filter: CommunityPosts});
    PRINT TopKPosts;
  END;
}`, "q4", map[string]any{"topic_emb": vecArg(f.vecs[2]), "k": 2})
	if len(res.Outputs) < 2 {
		t.Fatalf("expected one output per community, got %d", len(res.Outputs))
	}
	total := 0
	for _, o := range res.Outputs {
		set := o.Value.(*engine.VertexSet)
		if set.Size() > 2 {
			t.Fatalf("community top-k too large: %d", set.Size())
		}
		total += set.Size()
	}
	if total == 0 {
		t.Fatal("no community results")
	}
}

func TestSetOperations(t *testing.T) {
	f := newFixture(t, 30)
	res := defineAndRun(t, f, `
CREATE QUERY setops () {
  English = SELECT s FROM (s:Post) WHERE s.language = "English";
  Long = SELECT s FROM (s:Post) WHERE s.length >= 1500;
  Both = English INTERSECT Long;
  Either = English UNION Long;
  OnlyEnglish = English MINUS Long;
  PRINT size(Both), size(Either), size(OnlyEnglish);
}`, "setops", nil)
	both := res.Outputs[0].Value.(int64)
	either := res.Outputs[1].Value.(int64)
	only := res.Outputs[2].Value.(int64)
	if both+only != 20 { // 20 English posts of 30
		t.Fatalf("both=%d only=%d", both, only)
	}
	if either < 20 || either > 30 {
		t.Fatalf("either=%d", either)
	}
}

func TestAccumulatorsAndControlFlow(t *testing.T) {
	f := newFixture(t, 10)
	res := defineAndRun(t, f, `
CREATE QUERY ctrl (INT n) {
  SumAccum<INT> @@total;
  MaxAccum<FLOAT> @@biggest;
  FOREACH i IN RANGE[1, n] DO
    @@total += i;
    @@biggest += i * 2;
  END;
  IF @@total > 10 THEN
    PRINT "big";
  ELSE
    PRINT "small";
  END;
  x = 0;
  WHILE x < 3 LIMIT 100 DO
    x = x + 1;
  END;
  PRINT @@total, @@biggest, x;
}`, "ctrl", map[string]any{"n": 5})
	if res.Outputs[0].Value.(string) != "big" {
		t.Fatalf("if branch = %v", res.Outputs[0].Value)
	}
	if res.Outputs[1].Value.(int64) != 15 {
		t.Fatalf("sum = %v", res.Outputs[1].Value)
	}
	if res.Outputs[2].Value.(float64) != 10 {
		t.Fatalf("max = %v", res.Outputs[2].Value)
	}
	if res.Outputs[3].Value.(int64) != 3 {
		t.Fatalf("while x = %v", res.Outputs[3].Value)
	}
}

func TestSelectFirstAliasReversesPattern(t *testing.T) {
	f := newFixture(t, 40)
	// Select the HEAD of the pattern: persons who created long posts.
	res := defineAndRun(t, f, `
CREATE QUERY heads () {
  Creators = SELECT p FROM (p:Person) <-[:hasCreator]- (t:Post) WHERE t.length > 3000;
  PRINT Creators;
}`, "heads", nil)
	set := res.Outputs[0].Value.(*engine.VertexSet)
	if set.Type != "Person" || set.Size() == 0 {
		t.Fatalf("creators = %v", set.IDs())
	}
	// Posts with length > 3000 are i in 31..39 -> creators i%10.
	for _, id := range set.IDs() {
		v, _ := f.in.E.G.Attr("Person", id, "id")
		if v.(int64) > 9 {
			t.Fatalf("unexpected person %v", v)
		}
	}
}

func TestRunErrors(t *testing.T) {
	f := newFixture(t, 5)
	if _, err := f.in.Run("nope", nil); err == nil {
		t.Fatal("unknown query accepted")
	}
	if err := f.in.Exec(`CREATE QUERY p1 (INT k) { PRINT k; }`); err != nil {
		t.Fatal(err)
	}
	if _, err := f.in.Run("p1", nil); err == nil {
		t.Fatal("missing arg accepted")
	}
	if _, err := f.in.Run("p1", map[string]any{"k": "notint"}); err == nil {
		t.Fatal("wrong arg type accepted")
	}
	if _, err := f.in.Run("p1", map[string]any{"k": 1, "extra": 2}); err == nil {
		t.Fatal("extra arg accepted")
	}
	if err := f.in.Exec(`CREATE QUERY p1 () { PRINT 1; }`); err == nil {
		t.Fatal("duplicate query accepted")
	}
}

func TestQueryValidationErrors(t *testing.T) {
	f := newFixture(t, 10)
	cases := map[string]string{
		"multi_alias_pred": `CREATE QUERY e1 () {
  R = SELECT t FROM (s:Person) <-[:hasCreator]- (t:Post) WHERE s.id = t.length;
  PRINT R; }`,
		"vd_without_limit": `CREATE QUERY e2 (LIST<FLOAT> qv) {
  R = SELECT s FROM (s:Post) ORDER BY VECTOR_DIST(s.content_emb, qv);
  PRINT R; }`,
		"unknown_type": `CREATE QUERY e3 () {
  R = SELECT s FROM (s:Nope);
  PRINT R; }`,
		"alias_not_endpoint": `CREATE QUERY e4 () {
  R = SELECT u FROM (s:Comment) -[:commentHasCreator]-> (u:Person) -[:knows]-> (v:Person);
  PRINT R; }`,
	}
	args := map[string]map[string]any{
		"vd_without_limit": {"qv": vecArg(make([]float32, 8))},
	}
	names := map[string]string{
		"multi_alias_pred": "e1", "vd_without_limit": "e2",
		"unknown_type": "e3", "alias_not_endpoint": "e4",
	}
	for label, src := range cases {
		if err := f.in.Exec(src); err != nil {
			t.Fatalf("%s: define failed: %v", label, err)
		}
		if _, err := f.in.Run(names[label], args[label]); err == nil {
			t.Fatalf("%s: expected runtime error", label)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		`CREATE VERTEX V (id BLOB);`,
		`CREATE QUERY q () { R = SELECT s FROM ; }`,
		`CREATE QUERY q () { PRINT "unterminated; }`,
		`SELECT 1;`,
		`CREATE QUERY q () { R = SELECT s FROM (s:Post) <-[:x]-> (t:Post); PRINT R; }`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("parse accepted %q", bad)
		}
	}
}

func TestQueriesListing(t *testing.T) {
	f := newFixture(t, 1)
	f.in.Exec(`CREATE QUERY zeta () { PRINT 1; }`)
	f.in.Exec(`CREATE QUERY alpha () { PRINT 1; }`)
	qs := f.in.Queries()
	if len(qs) != 2 || qs[0] != "alpha" {
		t.Fatalf("Queries = %v", qs)
	}
}

func TestPrintScalarsAndVectorDist(t *testing.T) {
	f := newFixture(t, 5)
	res := defineAndRun(t, f, `
CREATE QUERY scalars (LIST<FLOAT> a, LIST<FLOAT> b) {
  PRINT VECTOR_DIST(a, b), 2 + 3 * 4, -7, abs(-2.5), true AND NOT false;
}`, "scalars", map[string]any{
		"a": []float64{1, 0, 0, 0, 0, 0, 0, 0},
		"b": []float64{0, 1, 0, 0, 0, 0, 0, 0},
	})
	if res.Outputs[0].Value.(float64) != 2 { // squared L2
		t.Fatalf("dist = %v", res.Outputs[0].Value)
	}
	if res.Outputs[1].Value.(int64) != 14 {
		t.Fatalf("arith = %v", res.Outputs[1].Value)
	}
	if res.Outputs[2].Value.(int64) != -7 {
		t.Fatalf("neg = %v", res.Outputs[2].Value)
	}
	if res.Outputs[3].Value.(float64) != 2.5 {
		t.Fatalf("abs = %v", res.Outputs[3].Value)
	}
	if res.Outputs[4].Value.(bool) != true {
		t.Fatalf("bool = %v", res.Outputs[4].Value)
	}
}

func TestOrderByAttributeLimit(t *testing.T) {
	f := newFixture(t, 30)
	res := defineAndRun(t, f, `
CREATE QUERY longest (INT k) {
  R = SELECT s FROM (s:Post) ORDER BY s.length DESC LIMIT k;
  PRINT R;
}`, "longest", map[string]any{"k": 3})
	set := res.Outputs[0].Value.(*engine.VertexSet)
	if set.Size() != 3 {
		t.Fatalf("size = %d", set.Size())
	}
	for _, id := range set.IDs() {
		v, _ := f.in.E.G.Attr("Post", id, "length")
		if v.(int64) < 2700 {
			t.Fatalf("not a longest post: %v", v)
		}
	}
}

// INDEX = IVF is accepted by the DDL and served end to end (paper
// Sec. 4.4: other vector indexes integrate behind the same interface).
func TestIVFIndexViaDDL(t *testing.T) {
	f := newFixture(t, 5)
	if err := f.in.Exec(`
ALTER VERTEX Person ADD EMBEDDING ATTRIBUTE ivf_emb (
  DIMENSION = 4, MODEL = M2, INDEX = IVF, DATATYPE = FLOAT, METRIC = L2);`); err != nil {
		t.Fatal(err)
	}
	store, ok := f.in.E.Emb.Store("Person.ivf_emb")
	if !ok {
		t.Fatal("ivf store not registered")
	}
	var ids []uint64
	var vecs [][]float32
	for i := 0; i < 50; i++ {
		id := uint64(i)
		ids = append(ids, id)
		vecs = append(vecs, []float32{float32(i), 0, 0, 0})
	}
	if err := store.BulkLoad(ids, vecs, 1, 1); err != nil {
		t.Fatal(err)
	}
	res := defineAndRun(t, f, `
CREATE QUERY ivf_topk (LIST<FLOAT> qv, INT k) {
  R = SELECT s FROM (s:Person) ORDER BY VECTOR_DIST(s.ivf_emb, qv) LIMIT k;
  PRINT R;
}`, "ivf_topk", map[string]any{"qv": []float64{7, 0, 0, 0}, "k": 1})
	set := res.Outputs[0].Value.(*engine.VertexSet)
	if set.Size() != 1 || !set.Contains(7) {
		t.Fatalf("ivf topk = %v", set.IDs())
	}
}

// TestStatsCandidatesSetOnAllBranches is the regression test for the
// stale-stats bug: Candidates (and the plan stats) must be populated on
// every vector-search branch, so a pure (unfiltered) search after a
// filtered one reports its own candidate universe, not the previous
// block's filter size.
func TestStatsCandidatesSetOnAllBranches(t *testing.T) {
	f := newFixture(t, 60)
	// Filtered first: candidates = English posts (40 of 60), plan set.
	res := defineAndRun(t, f, `
CREATE QUERY fthen (LIST<FLOAT> qv, INT k) {
  Res = SELECT s FROM (s:Post)
        WHERE s.language = "English"
        ORDER BY VECTOR_DIST(s.content_emb, qv) LIMIT k;
  PRINT Res;
}`, "fthen", map[string]any{"qv": vecArg(f.vecs[0]), "k": 5})
	if res.Stats.Candidates != 40 {
		t.Fatalf("filtered candidates = %d, want 40", res.Stats.Candidates)
	}
	if res.Stats.Plan == "" || res.Stats.Selectivity <= 0 {
		t.Fatalf("filtered plan stats missing: %+v", res.Stats)
	}
	if !strings.Contains(res.Plans[0], "sel=") {
		t.Fatalf("plan line lacks planner summary: %q", res.Plans[0])
	}

	// Pure search second: candidates must be the full live universe and
	// the plan stats must reset, not leak from the filtered block.
	res = defineAndRun(t, f, `
CREATE QUERY pureafter (LIST<FLOAT> qv, INT k) {
  Res = SELECT s FROM (s:Post) ORDER BY VECTOR_DIST(s.content_emb, qv) LIMIT k;
  PRINT Res;
}`, "pureafter", map[string]any{"qv": vecArg(f.vecs[0]), "k": 5})
	if res.Stats.Candidates != 60 {
		t.Fatalf("pure-search candidates = %d, want 60 (stale value leaked?)", res.Stats.Candidates)
	}
	if res.Stats.Plan != "" || res.Stats.Selectivity != 0 {
		t.Fatalf("pure-search plan stats not reset: %+v", res.Stats)
	}

	// Range branch with a pre-filter: candidates + plan set there too.
	res = defineAndRun(t, f, `
CREATE QUERY frange (LIST<FLOAT> qv) {
  Res = SELECT s FROM (s:Post)
        WHERE s.language = "English" AND VECTOR_DIST(s.content_emb, qv) < 100.0;
  PRINT Res;
}`, "frange", map[string]any{"qv": vecArg(f.vecs[0])})
	if res.Stats.Candidates != 40 {
		t.Fatalf("range candidates = %d, want 40", res.Stats.Candidates)
	}
	if res.Stats.Plan == "" {
		t.Fatalf("range plan stats missing: %+v", res.Stats)
	}

	// VectorSearch() without a filter option reports the live universe.
	res = defineAndRun(t, f, `
CREATE QUERY vsplain (LIST<FLOAT> qv, INT k) {
  Res = VectorSearch({Post.content_emb}, qv, k);
  PRINT Res;
}`, "vsplain", map[string]any{"qv": vecArg(f.vecs[0]), "k": 5})
	if res.Stats.Candidates != 60 {
		t.Fatalf("VectorSearch candidates = %d, want 60", res.Stats.Candidates)
	}
	if res.Stats.Plan != "" {
		t.Fatalf("unfiltered VectorSearch plan not empty: %q", res.Stats.Plan)
	}
}
