package gsql

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/txn"
	"repro/internal/vectormath"
)

func txnTID(v uint64) txn.TID { return txn.TID(v) }

// resolvedNode is a pattern node with its vertex type and optional
// starting vertex sets (from vertex-set variables).
type resolvedNode struct {
	alias  string
	typ    string
	starts []*engine.VertexSet // non-nil when the label was a variable
}

// selectRun carries the state of one SELECT block execution.
type selectRun struct {
	ev      *env
	sel     SelectExpr
	nodes   []resolvedNode
	edges   []EdgeSpec
	aliases map[string]bool
	preds   map[string][]Expr // per-alias conjuncts
	plan    []string

	// Vector search classification.
	topkAlias   string // ORDER BY VECTOR_DIST(alias.attr, queryVec)
	topkAttr    string
	topkQuery   []float32
	rangeAlias  string // WHERE VECTOR_DIST(alias.attr, qv) < t
	rangeAttr   string
	rangeQuery  []float32
	rangeThresh float32
	joinSrc     string // ORDER BY VECTOR_DIST(a.attr, b.attr)
	joinSrcAttr string
	joinDst     string
	joinDstAttr string
	orderAttr   *OrderBy // plain attribute ordering
	limit       int
}

// execSelect runs one query block.
func (ev *env) execSelect(sel SelectExpr) (any, error) {
	r := &selectRun{ev: ev, sel: sel, preds: map[string][]Expr{}, limit: -1, aliases: map[string]bool{}}
	if err := r.resolvePattern(); err != nil {
		return nil, err
	}
	if err := r.classify(); err != nil {
		return nil, err
	}
	out, err := r.execute()
	if err != nil {
		return nil, err
	}
	ev.out.Plans = append(ev.out.Plans, strings.Join(r.plan, "\n"))
	return out, nil
}

func (r *selectRun) resolvePattern() error {
	pat := r.sel.Pattern
	if pat == nil || len(pat.Nodes) == 0 {
		return fmt.Errorf("gsql: SELECT without FROM pattern")
	}
	sch := r.ev.in.E.G.Schema()
	for i, ns := range pat.Nodes {
		rn := resolvedNode{alias: ns.Alias}
		if rn.alias == "" {
			rn.alias = fmt.Sprintf("_n%d", i)
		}
		label := ns.Label
		if label == "" {
			label = ns.Alias // (Alias) with a variable name
		}
		if _, ok := sch.VertexType(label); ok {
			rn.typ = label
		} else if v, ok := r.ev.vars[label]; ok {
			switch s := v.(type) {
			case *engine.VertexSet:
				rn.typ = s.Type
				rn.starts = []*engine.VertexSet{s}
			case *MultiSet:
				if i != 0 {
					return fmt.Errorf("gsql: multi-type vertex set %q may only start a pattern", label)
				}
				rn.starts = s.Sets
				rn.typ = "" // resolved per member set
			default:
				return fmt.Errorf("gsql: %q is not a vertex set (it is %T)", label, v)
			}
		} else {
			return fmt.Errorf("gsql: unknown vertex type or variable %q in pattern", label)
		}
		if ns.Alias != "" {
			if r.aliases[ns.Alias] {
				return fmt.Errorf("gsql: duplicate alias %q", ns.Alias)
			}
			r.aliases[ns.Alias] = true
		}
		r.nodes = append(r.nodes, rn)
	}
	r.edges = pat.Edges
	for _, a := range r.sel.Aliases {
		if !r.aliases[a] {
			return fmt.Errorf("gsql: SELECT alias %q not bound in pattern", a)
		}
	}
	return nil
}

// classify splits WHERE into per-alias conjuncts and detects the vector
// search form of the block.
func (r *selectRun) classify() error {
	if r.sel.Limit != nil {
		l, err := r.ev.evalInt(r.sel.Limit)
		if err != nil {
			return err
		}
		if l < 0 {
			return fmt.Errorf("gsql: negative LIMIT %d", l)
		}
		r.limit = int(l)
	}
	if r.sel.Where != nil {
		for _, c := range splitConjuncts(r.sel.Where) {
			if ok, err := r.tryRangeConjunct(c); err != nil {
				return err
			} else if ok {
				continue
			}
			refs := map[string]bool{}
			collectAliasRefs(c, r.aliases, refs)
			switch len(refs) {
			case 0:
				v, err := r.ev.evalScalar(c, nil)
				if err != nil {
					return err
				}
				b, ok := v.(bool)
				if !ok {
					return fmt.Errorf("gsql: WHERE conjunct %s is not boolean", exprString(c))
				}
				if !b {
					// Constant-false: empty everything by predicating the
					// first node to false.
					r.preds["__false__"] = append(r.preds["__false__"], c)
				}
			case 1:
				var alias string
				for a := range refs {
					alias = a
				}
				r.preds[alias] = append(r.preds[alias], c)
			default:
				return fmt.Errorf("gsql: WHERE conjunct %s references multiple aliases; only VECTOR_DIST joins are supported across aliases", exprString(c))
			}
		}
	}
	if r.sel.OrderBy != nil {
		e := r.sel.OrderBy.Expr
		if call, ok := e.(CallExpr); ok && isVectorDistFn(call.Fn) {
			if len(call.Args) != 2 {
				return fmt.Errorf("gsql: VECTOR_DIST takes 2 arguments")
			}
			a0, ok0 := call.Args[0].(AttrRef)
			a1, ok1 := call.Args[1].(AttrRef)
			if ok0 && ok1 && r.aliases[a0.Base] && r.aliases[a1.Base] {
				// Similarity join.
				r.joinSrc, r.joinSrcAttr = a0.Base, a0.Attr
				r.joinDst, r.joinDstAttr = a1.Base, a1.Attr
				return nil
			}
			if ok0 && r.aliases[a0.Base] {
				q, err := r.evalVector(call.Args[1])
				if err != nil {
					return err
				}
				r.topkAlias, r.topkAttr, r.topkQuery = a0.Base, a0.Attr, q
				return nil
			}
			if ok1 && r.aliases[a1.Base] {
				q, err := r.evalVector(call.Args[0])
				if err != nil {
					return err
				}
				r.topkAlias, r.topkAttr, r.topkQuery = a1.Base, a1.Attr, q
				return nil
			}
			return fmt.Errorf("gsql: ORDER BY VECTOR_DIST must reference a pattern alias")
		}
		r.orderAttr = r.sel.OrderBy
	}
	return nil
}

func isVectorDistFn(fn string) bool {
	return fn == "VECTOR_DIST" || fn == "vector_dist"
}

// tryRangeConjunct matches VECTOR_DIST(alias.attr, qv) < threshold.
func (r *selectRun) tryRangeConjunct(c Expr) (bool, error) {
	b, ok := c.(BinaryExpr)
	if !ok || (b.Op != "<" && b.Op != "<=") {
		return false, nil
	}
	call, ok := b.L.(CallExpr)
	if !ok || !isVectorDistFn(call.Fn) || len(call.Args) != 2 {
		return false, nil
	}
	ar, ok := call.Args[0].(AttrRef)
	if !ok || !r.aliases[ar.Base] {
		return false, nil
	}
	refs := map[string]bool{}
	collectAliasRefs(call.Args[1], r.aliases, refs)
	if len(refs) != 0 {
		return false, nil
	}
	q, err := r.evalVector(call.Args[1])
	if err != nil {
		return false, err
	}
	tv, err := r.ev.evalScalar(b.R, nil)
	if err != nil {
		return false, err
	}
	tf, ok := toFloat(tv)
	if !ok {
		return false, fmt.Errorf("gsql: range threshold must be numeric, got %T", tv)
	}
	if r.rangeAlias != "" {
		return false, fmt.Errorf("gsql: multiple VECTOR_DIST range conditions")
	}
	r.rangeAlias, r.rangeAttr, r.rangeQuery, r.rangeThresh = ar.Base, ar.Attr, q, float32(tf)
	return true, nil
}

func (r *selectRun) evalVector(e Expr) ([]float32, error) {
	v, err := r.ev.evalScalar(e, nil)
	if err != nil {
		return nil, err
	}
	vec, ok := v.([]float32)
	if !ok {
		return nil, fmt.Errorf("gsql: expected vector, got %T (%s)", v, exprString(e))
	}
	return vec, nil
}

// nodePred builds the engine predicate for one node alias.
func (r *selectRun) nodePred(node resolvedNode) engine.Pred {
	conj := r.preds[node.alias]
	if len(r.preds["__false__"]) > 0 {
		return func(uint64) (bool, error) { return false, nil }
	}
	if len(conj) == 0 {
		return nil
	}
	typ := node.typ
	return func(id uint64) (bool, error) {
		bind := binding{node.alias: {typ: typ, id: id}}
		for _, c := range conj {
			v, err := r.ev.evalScalar(c, bind)
			if err != nil {
				return false, err
			}
			b, ok := v.(bool)
			if !ok {
				return false, fmt.Errorf("gsql: predicate %s is not boolean", exprString(c))
			}
			if !b {
				return false, nil
			}
		}
		return true, nil
	}
}

func (r *selectRun) predString(node resolvedNode) string {
	conj := r.preds[node.alias]
	if len(conj) == 0 {
		return ""
	}
	parts := make([]string, len(conj))
	for i, c := range conj {
		parts[i] = exprString(c)
	}
	return " {" + strings.Join(parts, " AND ") + "}"
}

// execute runs the classified block.
func (r *selectRun) execute() (any, error) {
	if r.joinSrc != "" {
		return r.executeSimilarityJoin()
	}
	if len(r.sel.Aliases) != 1 {
		return nil, fmt.Errorf("gsql: SELECT of multiple aliases requires a VECTOR_DIST similarity join ORDER BY")
	}
	target := r.sel.Aliases[0]

	// The target must sit at an end of the linear pattern; reverse the
	// pattern when it is the head so execution always ends on the target.
	if r.nodes[0].alias == target && len(r.nodes) > 1 {
		r.reversePattern()
	}
	if r.nodes[len(r.nodes)-1].alias != target {
		return nil, fmt.Errorf("gsql: SELECT alias %q must be an endpoint of the pattern", target)
	}

	// Vector search on the target runs as a filtered search over the
	// candidate set produced by the pattern (pre-filter, paper Sec. 5.3).
	vectorOnTarget := (r.topkAlias == target) || (r.rangeAlias == target)
	if (r.topkAlias != "" && r.topkAlias != target) || (r.rangeAlias != "" && r.rangeAlias != target) {
		return nil, fmt.Errorf("gsql: vector search alias must match the SELECT alias")
	}

	candidates, err := r.evalPath()
	if err != nil {
		return nil, err
	}
	if !vectorOnTarget {
		if r.orderAttr != nil && r.limit >= 0 {
			return r.orderAndLimit(candidates)
		}
		if r.limit >= 0 {
			return truncateSet(candidates, r.limit), nil
		}
		return candidates, nil
	}

	// Pure vector search needs no filter bitmap (the engine reuses the
	// vertex status structure); anything else passes the candidate set
	// to the selectivity-aware planner. Candidate and plan stats are set
	// on EVERY branch — including the pure-search ones — so a later
	// block can never report a stale earlier value.
	pureSearch := len(r.nodes) == 1 && len(r.preds) == 0
	node := r.nodes[len(r.nodes)-1]
	ref := graph.EmbeddingRef{VertexType: node.typ, Attr: r.topkAttr}
	filters := map[string]*engine.VertexSet{}
	var planOut *core.PlanSummary
	filterDesc := ""
	r.ev.out.Stats.Candidates = candidates.Size()
	r.ev.out.Stats.Selectivity = 0
	r.ev.out.Stats.Plan = ""
	if !pureSearch {
		filters[node.typ] = candidates
		planOut = &core.PlanSummary{}
	}
	recordPlan := func() {
		if planOut != nil {
			r.ev.out.Stats.Selectivity = planOut.Selectivity()
			r.ev.out.Stats.Plan = planOut.String()
			filterDesc = ", " + planOut.String()
		}
	}

	if r.rangeAlias != "" {
		ref.Attr = r.rangeAttr
		start := time.Now()
		res, err := r.ev.in.E.RangeAction(ref, r.rangeQuery, r.rangeThresh,
			engine.SearchOptions{Ef: r.ev.in.DefaultEf, Filters: filters, TID: txnTID(r.ev.tid), Plan: planOut})
		if err != nil {
			return nil, err
		}
		r.ev.out.Stats.VectorSearchTime += time.Since(start)
		recordPlan()
		r.plan = append([]string{fmt.Sprintf("EmbeddingAction[Range %s, {%s.%s}, query_vector]%s",
			trimFloat(float64(r.rangeThresh)), target, r.rangeAttr, filterDesc)}, r.plan...)
		ids := make([]uint64, len(res))
		for i, t := range res {
			ids[i] = t.ID
		}
		out := engine.NewVertexSet(node.typ, ids)
		if r.limit >= 0 {
			return truncateSet(out, r.limit), nil
		}
		return out, nil
	}

	k := r.limit
	if k < 0 {
		return nil, fmt.Errorf("gsql: ORDER BY VECTOR_DIST requires LIMIT k")
	}
	start := time.Now()
	res, err := r.ev.in.E.EmbeddingAction([]graph.EmbeddingRef{ref}, r.topkQuery,
		engine.SearchOptions{K: k, Ef: r.ev.in.DefaultEf, Filters: filters, TID: txnTID(r.ev.tid), Plan: planOut})
	if err != nil {
		return nil, err
	}
	r.ev.out.Stats.VectorSearchTime += time.Since(start)
	recordPlan()
	r.plan = append([]string{fmt.Sprintf("EmbeddingAction[Top %d, {%s.%s}, query_vector]%s", k, target, r.topkAttr, filterDesc)}, r.plan...)
	ids := make([]uint64, len(res))
	for i, t := range res {
		ids[i] = t.ID
	}
	return engine.NewVertexSet(node.typ, ids), nil
}

// reversePattern flips the linear pattern in place.
func (r *selectRun) reversePattern() {
	for i, j := 0, len(r.nodes)-1; i < j; i, j = i+1, j-1 {
		r.nodes[i], r.nodes[j] = r.nodes[j], r.nodes[i]
	}
	for i, j := 0, len(r.edges)-1; i < j; i, j = i+1, j-1 {
		r.edges[i], r.edges[j] = r.edges[j], r.edges[i]
	}
	for i := range r.edges {
		switch r.edges[i].Dir {
		case DirRight:
			r.edges[i].Dir = DirLeft
		case DirLeft:
			r.edges[i].Dir = DirRight
		}
	}
}

// evalPath walks the pattern left to right with frontier sets, applying
// per-node predicates, and returns the final frontier. Plan lines are
// recorded bottom-up (so the final plan reads top-down like the paper).
func (r *selectRun) evalPath() (*engine.VertexSet, error) {
	e := r.ev.in.E
	node0 := r.nodes[0]
	var frontier *engine.VertexSet
	if node0.starts != nil {
		// Start from vertex-set variables; apply node-0 predicates.
		pred := r.nodePred(node0)
		var merged *engine.VertexSet
		for _, s := range node0.starts {
			cur := s
			if pred != nil {
				filtered := engine.NewVertexSet(s.Type, nil)
				var perr error
				s.Bitmap.Range(func(i int) bool {
					ok, err := pred(uint64(i))
					if err != nil {
						perr = err
						return false
					}
					if ok {
						filtered.Bitmap.Set(i)
					}
					return true
				})
				if perr != nil {
					return nil, perr
				}
				cur = filtered
			}
			if merged == nil {
				merged = cur
			} else {
				var err error
				merged, err = merged.Union(cur)
				if err != nil {
					// Different member types: multi-type start is only
					// valid for single-node patterns or same edge
					// endpoints; traverse each separately below.
					return r.evalPathMultiStart(node0)
				}
			}
		}
		frontier = merged
		r.plan = append(r.plan, fmt.Sprintf("VertexAction[%s:%s%s]", setLabel(node0), node0.alias, r.predString(node0)))
	} else {
		var err error
		frontier, err = e.VertexAction(node0.typ, r.nodePred(node0))
		if err != nil {
			return nil, err
		}
		r.plan = append(r.plan, fmt.Sprintf("VertexAction[%s:%s%s]", node0.typ, node0.alias, r.predString(node0)))
	}
	return r.walkEdges(frontier, 0)
}

func setLabel(n resolvedNode) string {
	if n.typ != "" {
		return n.typ
	}
	return "VertexSet"
}

// evalPathMultiStart handles a MultiSet start: each member set walks the
// pattern independently and results union (all must end on the same
// target type).
func (r *selectRun) evalPathMultiStart(node0 resolvedNode) (*engine.VertexSet, error) {
	var result *engine.VertexSet
	for _, s := range node0.starts {
		f, err := r.walkEdges(s, 0)
		if err != nil {
			// Member types whose edges don't apply are skipped (e.g.
			// Posts and Comments both reaching Person via hasCreator use
			// separate edge types in stricter schemas).
			continue
		}
		if result == nil {
			result = f
		} else {
			result, err = result.Union(f)
			if err != nil {
				return nil, err
			}
		}
	}
	if result == nil {
		return nil, fmt.Errorf("gsql: no member of the multi-type start can traverse the pattern")
	}
	return result, nil
}

func (r *selectRun) walkEdges(frontier *engine.VertexSet, fromIdx int) (*engine.VertexSet, error) {
	e := r.ev.in.E
	for i := fromIdx; i < len(r.edges); i++ {
		es := r.edges[i]
		next := r.nodes[i+1]
		var dir engine.Direction
		var arrow string
		switch es.Dir {
		case DirRight:
			dir = engine.Out
			arrow = es.Label + ">"
		case DirLeft:
			dir = engine.In
			arrow = "<" + es.Label
		default:
			dir = engine.Out
			arrow = es.Label
		}
		out, err := e.EdgeAction(frontier, es.Label, dir, r.nodePred(next))
		if err != nil {
			return nil, err
		}
		if next.typ != "" && out.Type != next.typ {
			return nil, fmt.Errorf("gsql: pattern node %q expects type %s but edge %s reaches %s",
				next.alias, next.typ, es.Label, out.Type)
		}
		r.plan = append([]string{fmt.Sprintf("EdgeAction[%s:%s, %s, %s:%s%s]",
			frontier.Type, r.nodes[i].alias, arrow, out.Type, next.alias, r.predString(next))}, r.plan...)
		frontier = out
	}
	return frontier, nil
}

func truncateSet(s *engine.VertexSet, limit int) *engine.VertexSet {
	if s.Size() <= limit {
		return s
	}
	ids := s.IDs()
	return engine.NewVertexSet(s.Type, ids[:limit])
}

// orderAndLimit sorts the final set by a scalar attribute and truncates.
func (r *selectRun) orderAndLimit(s *engine.VertexSet) (*engine.VertexSet, error) {
	ar, ok := r.orderAttr.Expr.(AttrRef)
	if !ok {
		return nil, fmt.Errorf("gsql: ORDER BY supports VECTOR_DIST or a single attribute")
	}
	type row struct {
		id uint64
		v  float64
	}
	var rows []row
	var rerr error
	s.Bitmap.Range(func(i int) bool {
		v, err := r.ev.in.E.G.Attr(s.Type, uint64(i), ar.Attr)
		if err != nil {
			rerr = err
			return false
		}
		f, ok := toFloat(v)
		if !ok {
			rerr = fmt.Errorf("gsql: ORDER BY non-numeric attribute %s", ar.Attr)
			return false
		}
		rows = append(rows, row{uint64(i), f})
		return true
	})
	if rerr != nil {
		return nil, rerr
	}
	sort.Slice(rows, func(a, b int) bool {
		if r.orderAttr.Desc {
			return rows[a].v > rows[b].v
		}
		return rows[a].v < rows[b].v
	})
	if r.limit >= 0 && len(rows) > r.limit {
		rows = rows[:r.limit]
	}
	ids := make([]uint64, len(rows))
	for i, rw := range rows {
		ids[i] = rw.id
	}
	return engine.NewVertexSet(s.Type, ids), nil
}

// ---- Vector similarity join on graph patterns (paper Sec. 5.4) ----

type pairHeap []Pair

func (h pairHeap) Len() int           { return len(h) }
func (h pairHeap) Less(i, j int) bool { return h[i].Distance > h[j].Distance } // max-heap
func (h pairHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x any)        { *h = append(*h, x.(Pair)) }
func (h *pairHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// executeSimilarityJoin enumerates all matched paths with a brute-force
// DFS (matched paths are typically sparse, paper Sec. 5.4) and keeps the
// top-k (src, dst) pairs in a global heap accumulator.
func (r *selectRun) executeSimilarityJoin() (any, error) {
	if r.limit < 0 {
		return nil, fmt.Errorf("gsql: similarity join requires LIMIT k")
	}
	if len(r.sel.Aliases) != 2 || r.sel.Aliases[0] != r.joinSrc || r.sel.Aliases[1] != r.joinDst {
		return nil, fmt.Errorf("gsql: similarity join must SELECT the two VECTOR_DIST aliases in order")
	}
	// Locate alias node indexes.
	srcIdx, dstIdx := -1, -1
	for i, n := range r.nodes {
		if n.alias == r.joinSrc {
			srcIdx = i
		}
		if n.alias == r.joinDst {
			dstIdx = i
		}
		if n.starts != nil {
			return nil, fmt.Errorf("gsql: similarity join over vertex-set variables is not supported")
		}
	}
	if srcIdx == -1 || dstIdx == -1 {
		return nil, fmt.Errorf("gsql: join aliases not found in pattern")
	}
	srcType := r.nodes[srcIdx].typ
	dstType := r.nodes[dstIdx].typ

	// Metric from the source attribute; compatibility check across both.
	refs := []graph.EmbeddingRef{
		{VertexType: srcType, Attr: r.joinSrcAttr},
		{VertexType: dstType, Attr: r.joinDstAttr},
	}
	base, err := r.ev.in.E.G.Schema().CheckCompatible(refs)
	if err != nil {
		return nil, err
	}
	metric := base.Metric
	r.ev.distMetric = &metric
	defer func() { r.ev.distMetric = nil }()
	dist := vectormath.FuncFor(metric)

	srcCtx, err := r.ev.embCtx(srcType, r.joinSrcAttr)
	if err != nil {
		return nil, err
	}
	dstCtx, err := r.ev.embCtx(dstType, r.joinDstAttr)
	if err != nil {
		return nil, err
	}

	// Predicates per node, evaluated during DFS.
	preds := make([]engine.Pred, len(r.nodes))
	for i, n := range r.nodes {
		preds[i] = r.nodePred(n)
	}
	start, err := r.ev.in.E.VertexAction(r.nodes[0].typ, preds[0])
	if err != nil {
		return nil, err
	}
	r.plan = append(r.plan, fmt.Sprintf("VertexAction[%s:%s%s]", r.nodes[0].typ, r.nodes[0].alias, r.predString(r.nodes[0])))
	for i := range r.edges {
		arrow := r.edges[i].Label + ">"
		if r.edges[i].Dir == DirLeft {
			arrow = "<" + r.edges[i].Label
		} else if r.edges[i].Dir == DirBoth {
			arrow = r.edges[i].Label
		}
		line := fmt.Sprintf("EdgeAction[%s:%s, %s, %s:%s%s]",
			r.nodes[i].typ, r.nodes[i].alias, arrow, r.nodes[i+1].typ, r.nodes[i+1].alias, r.predString(r.nodes[i+1]))
		if i == len(r.edges)-1 {
			line += fmt.Sprintf(", @@heapAcc += (%s, %s, dist(%s.%s, %s.%s))",
				r.joinSrc, r.joinDst, r.joinSrc, r.joinSrcAttr, r.joinDst, r.joinDstAttr)
		}
		r.plan = append([]string{line}, r.plan...)
	}

	h := &pairHeap{}
	heap.Init(h)
	seen := map[[2]uint64]bool{}
	startT := time.Now()

	path := make([]uint64, len(r.nodes))
	var dfs func(depth int, id uint64) error
	dfs = func(depth int, id uint64) error {
		path[depth] = id
		if depth == len(r.nodes)-1 {
			s, d := path[srcIdx], path[dstIdx]
			if srcType == dstType && s == d {
				return nil // a vertex is trivially similar to itself
			}
			key := [2]uint64{s, d}
			if srcType == dstType && d < s {
				// Same-type joins are symmetric; report each unordered
				// pair once.
				key = [2]uint64{d, s}
			}
			if seen[key] {
				return nil
			}
			seen[key] = true
			sv, ok1 := srcCtx.GetVector(s)
			dv, ok2 := dstCtx.GetVector(d)
			if !ok1 || !ok2 {
				return nil
			}
			p := Pair{SrcType: srcType, Src: s, DstType: dstType, Dst: d, Distance: dist(sv, dv)}
			if h.Len() < r.limit {
				heap.Push(h, p)
			} else if p.Distance < (*h)[0].Distance {
				heap.Pop(h)
				heap.Push(h, p)
			}
			return nil
		}
		es := r.edges[depth]
		next := r.nodes[depth+1]
		var nbrs []uint64
		if es.Dir == DirLeft {
			nbrs = r.ev.in.E.G.InNeighbors(es.Label, id)
		} else {
			nbrs = r.ev.in.E.G.OutNeighbors(es.Label, id)
		}
		for _, nb := range nbrs {
			if !r.ev.in.E.G.Alive(next.typ, nb) {
				continue
			}
			if preds[depth+1] != nil {
				ok, err := preds[depth+1](nb)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			if err := dfs(depth+1, nb); err != nil {
				return err
			}
		}
		return nil
	}
	var derr error
	start.Bitmap.Range(func(i int) bool {
		if err := dfs(0, uint64(i)); err != nil {
			derr = err
			return false
		}
		return true
	})
	if derr != nil {
		return nil, derr
	}
	r.ev.out.Stats.VectorSearchTime += time.Since(startT)

	rows := make([]Pair, h.Len())
	for i := len(rows) - 1; i >= 0; i-- {
		rows[i] = heap.Pop(h).(Pair)
	}
	return &PairTable{Rows: rows}, nil
}

// ---- VectorSearch() function (paper Sec. 5.5) ----

// execVectorSearch implements
//
//	VectorSearch({T.attr, ...}, queryVec, k, {filter: V, ef: N, distanceMap: @@m})
func (ev *env) execVectorSearch(x CallExpr) (any, error) {
	if len(x.Args) < 3 || len(x.Args) > 4 {
		return nil, fmt.Errorf("gsql: VectorSearch takes 3 or 4 arguments")
	}
	attrList, ok := x.Args[0].(ListExpr)
	if !ok {
		return nil, fmt.Errorf("gsql: VectorSearch first argument must be an attribute list")
	}
	var refs []graph.EmbeddingRef
	for _, el := range attrList.Elems {
		ar, ok := el.(AttrRef)
		if !ok {
			return nil, fmt.Errorf("gsql: VectorSearch attributes must be Type.attr references")
		}
		refs = append(refs, graph.EmbeddingRef{VertexType: ar.Base, Attr: ar.Attr})
	}
	// Static compatibility analysis (paper Sec. 4.1).
	if _, err := ev.in.E.G.Schema().CheckCompatible(refs); err != nil {
		return nil, err
	}
	qv, err := ev.evalScalar(x.Args[1], nil)
	if err != nil {
		return nil, err
	}
	query, ok := qv.([]float32)
	if !ok {
		return nil, fmt.Errorf("gsql: VectorSearch query must be a vector, got %T", qv)
	}
	kv, err := ev.evalScalar(x.Args[2], nil)
	if err != nil {
		return nil, err
	}
	k64, ok := kv.(int64)
	if !ok || k64 <= 0 {
		return nil, fmt.Errorf("gsql: VectorSearch k must be a positive integer")
	}

	opts := engine.SearchOptions{K: int(k64), Ef: ev.in.DefaultEf, TID: txnTID(ev.tid)}
	// Candidate and plan stats are set on every branch: unfiltered
	// searches report the live candidate universe and clear the plan, so
	// no block inherits a stale earlier value.
	universe := 0
	for _, ref := range refs {
		universe += ev.in.E.G.NumAlive(ref.VertexType)
	}
	ev.out.Stats.Candidates = universe
	ev.out.Stats.Selectivity = 0
	ev.out.Stats.Plan = ""
	var distMap *accumVal
	if len(x.Args) == 4 {
		ml, ok := x.Args[3].(MapLitExpr)
		if !ok {
			return nil, fmt.Errorf("gsql: VectorSearch optional parameters must be a {key: value} map")
		}
		for i, key := range ml.Keys {
			switch key {
			case "filter":
				fv, err := ev.evalScalar(ml.Values[i], nil)
				if err != nil {
					return nil, err
				}
				opts.Filters = map[string]*engine.VertexSet{}
				opts.Plan = &core.PlanSummary{}
				switch s := fv.(type) {
				case *engine.VertexSet:
					opts.Filters[s.Type] = s
					ev.out.Stats.Candidates = s.Size()
				case *MultiSet:
					total := 0
					for _, vs := range s.Sets {
						opts.Filters[vs.Type] = vs
						total += vs.Size()
					}
					ev.out.Stats.Candidates = total
				default:
					return nil, fmt.Errorf("gsql: VectorSearch filter must be a vertex set, got %T", fv)
				}
			case "ef":
				n, err := ev.evalInt(ml.Values[i])
				if err != nil {
					return nil, err
				}
				opts.Ef = int(n)
			case "distanceMap":
				ar, ok := ml.Values[i].(AccumRef)
				if !ok || !ar.Global {
					return nil, fmt.Errorf("gsql: distanceMap must be a global MapAccum reference")
				}
				a, ok := ev.accums[ar.Name]
				if !ok {
					return nil, fmt.Errorf("gsql: unknown accumulator @@%s", ar.Name)
				}
				distMap = a
			default:
				return nil, fmt.Errorf("gsql: unknown VectorSearch option %q", key)
			}
		}
	}

	startT := time.Now()
	res, err := ev.in.E.EmbeddingAction(refs, query, opts)
	if err != nil {
		return nil, err
	}
	ev.out.Stats.VectorSearchTime += time.Since(startT)
	attrs := make([]string, len(refs))
	for i, ref := range refs {
		attrs[i] = ref.String()
	}
	planDesc := ""
	if opts.Plan != nil {
		ev.out.Stats.Selectivity = opts.Plan.Selectivity()
		ev.out.Stats.Plan = opts.Plan.String()
		planDesc = ", " + opts.Plan.String()
	}
	ev.out.Plans = append(ev.out.Plans, fmt.Sprintf("EmbeddingAction[Top %d, {%s}, query_vector]%s", k64, strings.Join(attrs, ", "), planDesc))

	if distMap != nil {
		dm := make(map[uint64]float64, len(res))
		for _, t := range res {
			dm[t.ID] = float64(t.Distance)
		}
		if err := distMap.setDistances(dm); err != nil {
			return nil, err
		}
	}
	byType := map[string][]uint64{}
	var order []string
	for _, t := range res {
		if _, ok := byType[t.Type]; !ok {
			order = append(order, t.Type)
		}
		byType[t.Type] = append(byType[t.Type], t.ID)
	}
	if len(byType) == 1 {
		return engine.NewVertexSet(order[0], byType[order[0]]), nil
	}
	ms := &MultiSet{}
	sort.Strings(order)
	for _, typ := range order {
		ms.Sets = append(ms.Sets, engine.NewVertexSet(typ, byType[typ]))
	}
	if len(ms.Sets) == 0 {
		// Empty result: represent as an empty set of the first ref type.
		return engine.NewVertexSet(refs[0].VertexType, nil), nil
	}
	return ms, nil
}
