package engine

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/vectormath"
)

// testDB builds a small Person/Post graph with embeddings on Post.
type testDB struct {
	e     *Engine
	posts []uint64
	vecs  [][]float32
}

func newTestDB(t *testing.T, numPosts, segSize int) *testDB {
	t.Helper()
	s := graph.NewSchema()
	s.AddVertexType(graph.VertexType{
		Name: "Person", PrimaryKey: "id",
		Attrs: []storage.AttrSchema{
			{Name: "id", Type: storage.TInt},
			{Name: "firstName", Type: storage.TString},
		},
	})
	s.AddVertexType(graph.VertexType{
		Name: "Post", PrimaryKey: "id",
		Attrs: []storage.AttrSchema{
			{Name: "id", Type: storage.TInt},
			{Name: "language", Type: storage.TString},
			{Name: "length", Type: storage.TInt},
		},
	})
	s.AddEdgeType(graph.EdgeType{Name: "knows", From: "Person", To: "Person"})
	s.AddEdgeType(graph.EdgeType{Name: "hasCreator", From: "Post", To: "Person", Directed: true})
	s.AddEmbeddingAttr("Post", graph.EmbeddingAttr{
		Name: "content_emb", Dim: 8, Model: "m", Metric: vectormath.L2})

	g := graph.NewStore(s, segSize)
	svc := core.NewService(t.TempDir(), segSize, 1)
	vt, _ := s.VertexType("Post")
	ea, _ := vt.Embedding("content_emb")
	store, err := svc.Register("Post", ea)
	if err != nil {
		t.Fatal(err)
	}
	mgr := txn.NewManager(svc, nil)
	e := New(g, svc, mgr)

	// People 0..9.
	for i := 0; i < 10; i++ {
		name := "Person" + string(rune('A'+i))
		if i == 0 {
			name = "Alice"
		}
		g.AddVertex("Person", map[string]storage.Value{"id": int64(i), "firstName": name})
	}
	// knows: 0-1, 0-2, 1-3.
	p := func(i int) uint64 { id, _ := g.VertexByKey("Person", int64(i)); return id }
	g.AddEdge("knows", p(0), p(1))
	g.AddEdge("knows", p(0), p(2))
	g.AddEdge("knows", p(1), p(3))

	r := rand.New(rand.NewSource(42))
	db := &testDB{e: e}
	for i := 0; i < numPosts; i++ {
		lang := "English"
		if i%3 == 0 {
			lang = "French"
		}
		id, err := g.AddVertex("Post", map[string]storage.Value{
			"id": int64(1000 + i), "language": lang, "length": int64(i * 100)})
		if err != nil {
			t.Fatal(err)
		}
		g.AddEdge("hasCreator", id, p(i%10))
		v := make([]float32, 8)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		db.posts = append(db.posts, id)
		db.vecs = append(db.vecs, v)
	}
	if err := store.BulkLoad(db.posts, db.vecs, 4, mgr.Visible()+1); err != nil {
		t.Fatal(err)
	}
	// Advance the manager so Visible() >= bulk watermark.
	mgr.Begin().Commit()
	return db
}

func TestVertexActionFiltersAndParallel(t *testing.T) {
	db := newTestDB(t, 90, 16)
	e := db.e
	set, err := e.VertexAction("Post", func(id uint64) (bool, error) {
		v, err := e.G.Attr("Post", id, "language")
		if err != nil {
			return false, err
		}
		return v.(string) == "English", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if set.Size() != 60 {
		t.Fatalf("English posts = %d, want 60", set.Size())
	}
	all, _ := e.VertexAction("Post", nil)
	if all.Size() != 90 {
		t.Fatalf("all posts = %d", all.Size())
	}
	if _, err := e.VertexAction("Nope", nil); err == nil {
		t.Fatal("unknown type accepted")
	}
	wantErr := errors.New("pred fail")
	if _, err := e.VertexAction("Post", func(uint64) (bool, error) { return false, wantErr }); err == nil {
		t.Fatal("predicate error swallowed")
	}
}

func TestVertexActionSkipsDeleted(t *testing.T) {
	db := newTestDB(t, 20, 16)
	db.e.G.DeleteVertex("Post", db.posts[0])
	set, _ := db.e.VertexAction("Post", nil)
	if set.Size() != 19 || set.Contains(db.posts[0]) {
		t.Fatalf("deleted vertex in set: size=%d", set.Size())
	}
}

func TestEdgeActionDirections(t *testing.T) {
	db := newTestDB(t, 30, 16)
	e := db.e
	alice, _ := e.G.VertexByKey("Person", int64(0))
	start := NewVertexSet("Person", []uint64{alice})

	// Undirected knows.
	friends, err := e.EdgeAction(start, "knows", Out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if friends.Size() != 2 || friends.Type != "Person" {
		t.Fatalf("friends = %v (%d)", friends.IDs(), friends.Size())
	}
	// Reverse direction of directed edge: Person <- hasCreator - Post.
	posts, err := e.EdgeAction(start, "hasCreator", In, nil)
	if err != nil {
		t.Fatal(err)
	}
	if posts.Type != "Post" || posts.Size() != 3 { // posts 0, 10, 20 created by person 0
		t.Fatalf("posts by Alice = %d %v", posts.Size(), posts.IDs())
	}
	// Forward direction from Post to Person.
	creators, err := e.EdgeAction(posts, "hasCreator", Out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if creators.Size() != 1 || !creators.Contains(alice) {
		t.Fatalf("creators = %v", creators.IDs())
	}
	// Predicate on target.
	longPosts, err := e.EdgeAction(start, "hasCreator", In, func(id uint64) (bool, error) {
		v, _ := e.G.Attr("Post", id, "length")
		return v.(int64) >= 1000, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if longPosts.Size() != 2 {
		t.Fatalf("long posts = %d", longPosts.Size())
	}
	// Type mismatch.
	if _, err := e.EdgeAction(posts, "knows", Out, nil); err == nil {
		t.Fatal("knows from Post accepted")
	}
	if _, err := e.EdgeAction(start, "nope", Out, nil); err == nil {
		t.Fatal("unknown edge accepted")
	}
}

func TestVertexSetOps(t *testing.T) {
	a := NewVertexSet("T", []uint64{1, 2, 3})
	b := NewVertexSet("T", []uint64{3, 4})
	u, err := a.Union(b)
	if err != nil || u.Size() != 4 {
		t.Fatalf("union = %v, %v", u.IDs(), err)
	}
	i, _ := a.Intersect(b)
	if i.Size() != 1 || !i.Contains(3) {
		t.Fatalf("intersect = %v", i.IDs())
	}
	m, _ := a.Minus(b)
	if m.Size() != 2 || m.Contains(3) {
		t.Fatalf("minus = %v", m.IDs())
	}
	c := NewVertexSet("Other", nil)
	if _, err := a.Union(c); err == nil {
		t.Fatal("cross-type union accepted")
	}
	if _, err := a.Intersect(c); err == nil {
		t.Fatal("cross-type intersect accepted")
	}
	if _, err := a.Minus(c); err == nil {
		t.Fatal("cross-type minus accepted")
	}
	var nilSet *VertexSet
	if nilSet.Size() != 0 || nilSet.IDs() != nil || nilSet.Contains(1) {
		t.Fatal("nil set misbehaves")
	}
}

func refs() []graph.EmbeddingRef {
	return []graph.EmbeddingRef{{VertexType: "Post", Attr: "content_emb"}}
}

func TestEmbeddingActionPureSearch(t *testing.T) {
	db := newTestDB(t, 200, 32)
	q := db.vecs[17]
	res, err := db.e.EmbeddingAction(refs(), q, SearchOptions{K: 5, Ef: 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 || res[0].ID != db.posts[17] || res[0].Distance != 0 {
		t.Fatalf("res = %+v", res)
	}
	if res[0].Type != "Post" {
		t.Fatalf("type = %q", res[0].Type)
	}
}

func TestEmbeddingActionExcludesDeletedVertices(t *testing.T) {
	db := newTestDB(t, 50, 16)
	q := db.vecs[5]
	db.e.G.DeleteVertex("Post", db.posts[5])
	res, err := db.e.EmbeddingAction(refs(), q, SearchOptions{K: 3, Ef: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ID == db.posts[5] {
			t.Fatal("deleted vertex returned (status bitmap not applied)")
		}
	}
}

func TestEmbeddingActionFilteredSearch(t *testing.T) {
	db := newTestDB(t, 120, 16)
	e := db.e
	english, err := e.VertexAction("Post", func(id uint64) (bool, error) {
		v, _ := e.G.Attr("Post", id, "language")
		return v.(string) == "English", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	q := db.vecs[0] // post 0 is French (0%3==0)
	res, err := e.EmbeddingAction(refs(), q, SearchOptions{
		K: 10, Ef: 128, Filters: map[string]*VertexSet{"Post": english}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("filtered results = %d", len(res))
	}
	for _, r := range res {
		v, _ := e.G.Attr("Post", r.ID, "language")
		if v.(string) != "English" {
			t.Fatalf("filter violated: %+v", r)
		}
	}
}

func TestEmbeddingActionSkipsEmptyFilterSegments(t *testing.T) {
	db := newTestDB(t, 64, 16)
	// Filter matching only segment 0 posts.
	only := NewVertexSet("Post", db.posts[:8])
	q := db.vecs[60]
	res, err := db.e.EmbeddingAction(refs(), q, SearchOptions{
		K: 3, Filters: map[string]*VertexSet{"Post": only}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if !only.Contains(r.ID) {
			t.Fatalf("filter violated: %+v", r)
		}
	}
}

func TestEmbeddingActionValidation(t *testing.T) {
	db := newTestDB(t, 10, 16)
	if _, err := db.e.EmbeddingAction(refs(), db.vecs[0], SearchOptions{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	bad := []graph.EmbeddingRef{{VertexType: "Post", Attr: "nope"}}
	if _, err := db.e.EmbeddingAction(bad, db.vecs[0], SearchOptions{K: 1}); err == nil {
		t.Fatal("unknown attr accepted")
	}
}

func TestEmbeddingActionSeesCommittedDeltas(t *testing.T) {
	db := newTestDB(t, 30, 16)
	nv := []float32{50, 50, 50, 50, 50, 50, 50, 50}
	tx := db.e.Mgr.Begin()
	tx.StageVector(txn.StagedVector{AttrKey: "Post.content_emb", Action: txn.Upsert, ID: db.posts[3], Vec: nv})
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err := db.e.EmbeddingAction(refs(), nv, SearchOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != db.posts[3] || res[0].Distance != 0 {
		t.Fatalf("delta not visible: %+v", res)
	}
}

func TestRangeAction(t *testing.T) {
	db := newTestDB(t, 100, 16)
	q := db.vecs[9]
	res, err := db.e.RangeAction(refs()[0], q, 0.001, SearchOptions{Ef: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != db.posts[9] {
		t.Fatalf("tight range = %+v", res)
	}
	wide, err := db.e.RangeAction(refs()[0], q, 1e6, SearchOptions{Ef: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(wide) < 90 {
		t.Fatalf("wide range found %d", len(wide))
	}
	for i := 1; i < len(wide); i++ {
		if wide[i-1].Distance > wide[i].Distance {
			t.Fatal("range results not sorted")
		}
	}
}

func TestGetVector(t *testing.T) {
	db := newTestDB(t, 10, 16)
	v, ok := db.e.GetVector(refs()[0], db.posts[4], 0)
	if !ok || v[0] != db.vecs[4][0] {
		t.Fatalf("GetVector = %v, %v", v, ok)
	}
	if _, ok := db.e.GetVector(refs()[0], 1<<40, 0); ok {
		t.Fatal("absent id found")
	}
	if _, ok := db.e.GetVector(graph.EmbeddingRef{VertexType: "X", Attr: "y"}, 1, 0); ok {
		t.Fatal("unregistered attr found")
	}
}

func TestLoadGauge(t *testing.T) {
	db := newTestDB(t, 10, 16)
	e := db.e
	if e.Load() != 0 {
		t.Fatalf("idle load = %v", e.Load())
	}
	e.EnterQuery()
	if e.Load() <= 0 {
		t.Fatal("load not reflecting in-flight query")
	}
	e.LeaveQuery()
	if e.Load() != 0 {
		t.Fatal("load not released")
	}
	e.Parallelism = 1
	e.EnterQuery()
	e.EnterQuery()
	if e.Load() != 1 {
		t.Fatalf("load not clamped: %v", e.Load())
	}
	e.LeaveQuery()
	e.LeaveQuery()
}

func TestMergeTyped(t *testing.T) {
	a := []TypedResult{{Type: "A", ID: 1, Distance: 0.2}}
	b := []TypedResult{{Type: "B", ID: 1, Distance: 0.1}, {Type: "A", ID: 1, Distance: 0.2}}
	got := MergeTyped([][]TypedResult{a, b}, 10)
	if len(got) != 2 || got[0].Type != "B" {
		t.Fatalf("MergeTyped = %+v", got)
	}
	if got := MergeTyped(nil, 5); len(got) != 0 {
		t.Fatal("empty merge")
	}
}

func TestMultiTypeEmbeddingAction(t *testing.T) {
	// Build a store where both Person and Post share a compatible space.
	s := graph.NewSchema()
	s.AddVertexType(graph.VertexType{Name: "Post", PrimaryKey: "id",
		Attrs: []storage.AttrSchema{{Name: "id", Type: storage.TInt}}})
	s.AddVertexType(graph.VertexType{Name: "Comment", PrimaryKey: "id",
		Attrs: []storage.AttrSchema{{Name: "id", Type: storage.TInt}}})
	s.AddEmbeddingSpace(graph.EmbeddingSpace{Name: "sp", Dim: 4, Model: "m", Index: "HNSW", DataType: "FLOAT", Metric: vectormath.L2})
	s.AddEmbeddingAttr("Post", graph.EmbeddingAttr{Name: "emb", Space: "sp"})
	s.AddEmbeddingAttr("Comment", graph.EmbeddingAttr{Name: "emb", Space: "sp"})

	g := graph.NewStore(s, 8)
	svc := core.NewService(t.TempDir(), 8, 1)
	pvt, _ := s.VertexType("Post")
	pea, _ := pvt.Embedding("emb")
	postStore, _ := svc.Register("Post", pea)
	cvt, _ := s.VertexType("Comment")
	cea, _ := cvt.Embedding("emb")
	commentStore, _ := svc.Register("Comment", cea)
	mgr := txn.NewManager(svc, nil)
	e := New(g, svc, mgr)

	var pids, cids []uint64
	var pvecs, cvecs [][]float32
	for i := 0; i < 20; i++ {
		pid, _ := g.AddVertex("Post", map[string]storage.Value{"id": int64(i)})
		pids = append(pids, pid)
		pvecs = append(pvecs, []float32{float32(i), 0, 0, 0})
		cid, _ := g.AddVertex("Comment", map[string]storage.Value{"id": int64(i)})
		cids = append(cids, cid)
		cvecs = append(cvecs, []float32{float32(i) + 0.4, 0, 0, 0})
	}
	postStore.BulkLoad(pids, pvecs, 2, 1)
	commentStore.BulkLoad(cids, cvecs, 2, 1)
	mgr.Begin().Commit()

	both := []graph.EmbeddingRef{
		{VertexType: "Post", Attr: "emb"},
		{VertexType: "Comment", Attr: "emb"},
	}
	res, err := e.EmbeddingAction(both, []float32{5, 0, 0, 0}, SearchOptions{K: 3, Ef: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Nearest should be Post 5 (dist 0), then Comment 4 (+0.4 -> 5.4? no:
	// comment i is at i+0.4, so comment 4 is 4.4, comment 5 is 5.4).
	if res[0].Type != "Post" || res[0].ID != pids[5] {
		t.Fatalf("res[0] = %+v", res[0])
	}
	types := map[string]bool{}
	for _, r := range res {
		types[r.Type] = true
	}
	if !types["Post"] || !types["Comment"] {
		t.Fatalf("multi-type merge missing a type: %+v", res)
	}
}

// TestEmbeddingActionPlanSummary verifies SearchOptions.Plan receives
// the planner's aggregated decision and that results are unaffected by
// requesting it.
func TestEmbeddingActionPlanSummary(t *testing.T) {
	db := newTestDB(t, 120, 16)
	only := NewVertexSet("Post", db.posts[:6])
	q := db.vecs[0]
	plan := &core.PlanSummary{}
	res, err := db.e.EmbeddingAction(refs(), q, SearchOptions{
		K: 3, Ef: 64, Filters: map[string]*VertexSet{"Post": only}, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	bare, err := db.e.EmbeddingAction(refs(), q, SearchOptions{
		K: 3, Ef: 64, Filters: map[string]*VertexSet{"Post": only}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(bare) {
		t.Fatalf("plan out-param changed results: %d vs %d", len(res), len(bare))
	}
	if plan.Candidates != 6 {
		t.Fatalf("plan candidates = %d, want 6", plan.Candidates)
	}
	if plan.Brute == 0 || plan.Bitmap+plan.Post != 0 {
		t.Fatalf("6 candidates should brute-force: %+v", plan)
	}
	if plan.Live == 0 || plan.Selectivity() <= 0 {
		t.Fatalf("plan live/selectivity missing: %+v", plan)
	}
	// Counters accumulated across both searches.
	pc := db.e.PlanCounters()
	if pc.FilteredSearches != 2 {
		t.Fatalf("filtered searches = %d, want 2", pc.FilteredSearches)
	}
	if pc.BruteSegments != 2*int64(plan.Brute) {
		t.Fatalf("brute segments = %d, want %d", pc.BruteSegments, 2*plan.Brute)
	}
	// Unfiltered searches must not count as filtered.
	if _, err := db.e.EmbeddingAction(refs(), q, SearchOptions{K: 3}); err != nil {
		t.Fatal(err)
	}
	if got := db.e.PlanCounters().FilteredSearches; got != 2 {
		t.Fatalf("unfiltered search recorded a plan: %d", got)
	}
}

// TestRangeActionPlanSummary mirrors the top-k plan test for ranges.
func TestRangeActionPlanSummary(t *testing.T) {
	db := newTestDB(t, 120, 16)
	only := NewVertexSet("Post", db.posts[:6])
	plan := &core.PlanSummary{}
	_, err := db.e.RangeAction(refs()[0], db.vecs[0], 1e6, SearchOptions{
		Ef: 64, Filters: map[string]*VertexSet{"Post": only}, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Candidates != 6 || plan.Brute == 0 {
		t.Fatalf("range plan = %+v", plan)
	}
}
