package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/txn"
)

// TypedResult is a vector search hit tagged with its vertex type, so
// multi-type searches (VectorSearch over several embedding attributes)
// can be merged globally.
type TypedResult struct {
	Type     string
	ID       uint64
	Distance float32
}

// SearchOptions configures an EmbeddingAction.
type SearchOptions struct {
	// K is the number of results. Required.
	K int
	// Ef is the index search beam (the GSQL `ef` parameter); defaults to
	// max(K, 64).
	Ef int
	// Filters optionally restricts candidates per vertex type (the
	// pre-filter bitmap). A type without an entry uses its status bitmap,
	// i.e. all live vertices qualify. An explicit filter is compiled
	// once per request into per-segment dense bitsets and executed by
	// the selectivity-aware planner (core.PlanSegment); the unfiltered
	// path is untouched.
	Filters map[string]*VertexSet
	// Plan, when non-nil, receives the aggregated filter plan of the
	// search (strategies chosen per segment, candidate counts, measured
	// selectivity). Only filled when an explicit filter applies.
	Plan *core.PlanSummary
	// TID pins the snapshot; 0 means the manager's current visible TID.
	TID txn.TID
	// Pinned marks TID as an explicit caller-supplied snapshot pin (a
	// repeatable read of an earlier query's TID). Only pinned snapshots
	// are rejected when the vacuum already merged past them; internally
	// resolved TIDs may harmlessly trail a concurrent merge by a moment
	// — the index state is then a superset and the extra visibility
	// matches the unpinned contract.
	Pinned bool
	// Ctx, when non-nil, is checked cooperatively between segment scans:
	// a cancelled or deadline-expired context stops the fan-out, releases
	// the snapshot registration, and surfaces ctx.Err(). Nil never
	// cancels.
	Ctx context.Context
}

// ctxErr reports the cancellation state of an optional context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// staleSnapshotErr rejects an explicitly pinned snapshot the vacuum has
// already merged past: the index then contains newer versions the delta
// overlay cannot mask, so serving the query would silently break
// repeatable reads. Checked after BeginSearch so the registration
// itself blocks further retirement while the query runs.
func staleSnapshotErr(sc *core.SearchContext, key string, pinned bool) error {
	if pinned && sc.Stale() {
		return fmt.Errorf("engine: snapshot %d retired: %s indexes already merged past it", sc.TID, key)
	}
	return nil
}

// EmbeddingAction is the paper's per-segment parallel top-k primitive: it
// performs a local top-k on every embedding segment of every referenced
// attribute (plus the delta stores) and merges the local results into the
// global top-k. Compatibility of multi-attribute searches has already
// been checked by the planner (graph.Schema.CheckCompatible).
func (e *Engine) EmbeddingAction(refs []graph.EmbeddingRef, query []float32, opts SearchOptions) ([]TypedResult, error) {
	if opts.K <= 0 {
		return nil, fmt.Errorf("engine: EmbeddingAction requires K > 0")
	}
	if _, err := e.G.Schema().CheckCompatible(refs); err != nil {
		return nil, err
	}
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, err
	}
	ef := opts.Ef
	if ef < opts.K {
		ef = opts.K
	}
	if opts.Ef == 0 {
		ef = max(opts.K, 64)
	}
	tid := opts.TID
	if tid == 0 {
		tid = e.Mgr.Visible()
	}

	e.EnterQuery()
	defer e.LeaveQuery()

	type task struct {
		ref    graph.EmbeddingRef
		ctx    *core.SearchContext
		filter core.Filter       // legacy status-bitmap path (no explicit filter)
		sf     *core.StoreFilter // compiled filter (explicit-filter path)
		plan   core.SegmentPlan
		seg    int // -1 means delta scan
		valid  int
	}
	var tasks []task
	var ctxs []*core.SearchContext
	defer func() {
		for _, c := range ctxs {
			c.Close()
		}
	}()

	// actionSum aggregates the plans of every explicitly filtered ref;
	// recorded once per action so FilteredSearches counts searches, not
	// per-store sub-searches.
	var actionSum *core.PlanSummary
	for _, ref := range refs {
		store, ok := e.Emb.Store(core.AttrKey(ref.VertexType, ref.Attr))
		if !ok {
			return nil, fmt.Errorf("engine: embedding attribute %s is not materialized", ref)
		}
		// Validate the query dimension before any distance computation:
		// the delta-scan and brute-force paths iterate over len(query)
		// and would read past shorter stored vectors.
		if len(query) != store.Attr.Dim {
			return nil, fmt.Errorf("engine: %s expects query dimension %d, got %d", ref, store.Attr.Dim, len(query))
		}
		status, err := e.G.Status(ref.VertexType)
		if err != nil {
			return nil, err
		}
		// Pre-filter: explicit vertex-set filter if given, otherwise the
		// reused global vertex status structure wrapped as a bitmap
		// (paper Sec. 5.1).
		bitmap := status
		explicit := false
		if fs, ok := opts.Filters[ref.VertexType]; ok && fs != nil {
			bitmap = fs.Bitmap
			explicit = true
		}

		ctx := store.BeginSearch(tid)
		ctxs = append(ctxs, ctx)
		if err := staleSnapshotErr(ctx, store.Key, opts.Pinned); err != nil {
			return nil, err
		}
		if explicit {
			// Planner path: compile the filter once into per-segment
			// dense bitsets, then pick a strategy per segment from its
			// measured selectivity.
			refSum := &core.PlanSummary{}
			sf := ctx.CompileFilter(bitmap)
			refSum.Candidates = sf.Valid()
			refSum.Live = sf.Live()
			for seg := 0; seg < ctx.NumSegments(); seg++ {
				plan := ctx.PlanSegment(seg, sf, opts.K, ef)
				refSum.Add(plan)
				if plan.Strategy == core.PlanSkip {
					continue // no qualified vertices in this segment
				}
				tasks = append(tasks, task{ref: ref, ctx: ctx, sf: sf, plan: plan, seg: seg})
			}
			tasks = append(tasks, task{ref: ref, ctx: ctx, sf: sf, seg: -1})
			if actionSum == nil {
				actionSum = &core.PlanSummary{}
			}
			actionSum.Merge(refSum)
			continue
		}
		filter := func(id uint64) bool { return bitmap.Get(int(id)) }
		for seg := 0; seg < ctx.NumSegments(); seg++ {
			tasks = append(tasks, task{ref: ref, ctx: ctx, filter: filter, seg: seg, valid: -1})
		}
		tasks = append(tasks, task{ref: ref, ctx: ctx, filter: filter, seg: -1})
	}
	if actionSum != nil {
		e.planCounters.record(actionSum)
		if opts.Plan != nil {
			opts.Plan.Merge(actionSum)
		}
	}

	lists := make([][]TypedResult, len(tasks))
	var firstErr error
	var errMu sync.Mutex
	e.forEachParallel(opts.Ctx, len(tasks), func(i int) {
		// Cooperative cancellation at segment granularity: a cancelled
		// request stops fanning out instead of burning workers on scans
		// nobody will read.
		if ctxErr(opts.Ctx) != nil {
			return
		}
		t := tasks[i]
		var res []core.Result
		var err error
		switch {
		case t.seg < 0 && t.sf != nil:
			res = t.ctx.DeltaTopKSet(query, opts.K, t.sf)
		case t.seg < 0:
			res = t.ctx.DeltaTopK(query, opts.K, t.filter)
		case t.sf != nil:
			res, err = t.ctx.SearchSegmentPlan(t.seg, query, opts.K, t.sf, t.plan)
		default:
			res, err = t.ctx.SearchSegment(t.seg, query, opts.K, ef, t.filter, t.valid)
		}
		if err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
			return
		}
		out := make([]TypedResult, len(res))
		for j, r := range res {
			out[j] = TypedResult{Type: t.ref.VertexType, ID: r.ID, Distance: r.Distance}
		}
		lists[i] = out
	})
	if err := ctxErr(opts.Ctx); err != nil {
		// A partial merge would read as a complete answer; the caller
		// abandoned the request, so return its cancellation instead.
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return MergeTyped(lists, opts.K), nil
}

// RangeAction performs a range search (distance < threshold) across all
// segments of one embedding attribute.
func (e *Engine) RangeAction(ref graph.EmbeddingRef, query []float32, threshold float32, opts SearchOptions) ([]TypedResult, error) {
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, err
	}
	store, ok := e.Emb.Store(core.AttrKey(ref.VertexType, ref.Attr))
	if !ok {
		return nil, fmt.Errorf("engine: embedding attribute %s is not materialized", ref)
	}
	if len(query) != store.Attr.Dim {
		return nil, fmt.Errorf("engine: %s expects query dimension %d, got %d", ref, store.Attr.Dim, len(query))
	}
	tid := opts.TID
	if tid == 0 {
		tid = e.Mgr.Visible()
	}
	status, err := e.G.Status(ref.VertexType)
	if err != nil {
		return nil, err
	}
	bitmap := status
	explicit := false
	if fs, ok := opts.Filters[ref.VertexType]; ok && fs != nil {
		bitmap = fs.Bitmap
		explicit = true
	}
	filter := func(id uint64) bool { return bitmap.Get(int(id)) }
	ef := opts.Ef
	if ef <= 0 {
		ef = 64
	}

	e.EnterQuery()
	defer e.LeaveQuery()
	ctx := store.BeginSearch(tid)
	defer ctx.Close()
	if err := staleSnapshotErr(ctx, store.Key, opts.Pinned); err != nil {
		return nil, err
	}

	// Explicit filters run through the selectivity planner, exactly as
	// in EmbeddingAction. Range has no k, so the post strategy's fetch
	// inflation is moot; brute/bitmap/post selection still applies.
	var sf *core.StoreFilter
	var plans []core.SegmentPlan
	n := ctx.NumSegments()
	if explicit {
		sf = ctx.CompileFilter(bitmap)
		summary := opts.Plan
		if summary == nil {
			summary = &core.PlanSummary{}
		}
		summary.Candidates += sf.Valid()
		summary.Live += sf.Live()
		plans = make([]core.SegmentPlan, n)
		for seg := 0; seg < n; seg++ {
			plans[seg] = ctx.PlanSegment(seg, sf, 1, ef)
			summary.Add(plans[seg])
		}
		e.planCounters.record(summary)
	}
	lists := make([][]TypedResult, n+1)
	var firstErr error
	var errMu sync.Mutex
	e.forEachParallel(opts.Ctx, n+1, func(i int) {
		if ctxErr(opts.Ctx) != nil {
			return
		}
		var res []core.Result
		var err error
		switch {
		case i == n && sf != nil:
			res = ctx.DeltaRangeSet(query, threshold, sf)
		case i == n:
			res = ctx.DeltaRange(query, threshold, filter)
		case sf != nil:
			res, err = ctx.RangeSegmentPlan(i, query, threshold, sf, plans[i])
		default:
			res, err = ctx.RangeSegment(i, query, threshold, ef, filter)
		}
		if err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
			return
		}
		out := make([]TypedResult, len(res))
		for j, r := range res {
			out[j] = TypedResult{Type: ref.VertexType, ID: r.ID, Distance: r.Distance}
		}
		lists[i] = out
	})
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	merged := MergeTyped(lists, 1<<30)
	return merged, nil
}

// MergeTyped merges per-segment result lists into a global ascending
// top-k, deduplicating by (type, id).
func MergeTyped(lists [][]TypedResult, k int) []TypedResult {
	var total int
	for _, l := range lists {
		total += len(l)
	}
	all := make([]TypedResult, 0, total)
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Distance != all[j].Distance {
			return all[i].Distance < all[j].Distance
		}
		if all[i].Type != all[j].Type {
			return all[i].Type < all[j].Type
		}
		return all[i].ID < all[j].ID
	})
	type key struct {
		t  string
		id uint64
	}
	capHint := k
	if capHint > len(all) {
		capHint = len(all)
	}
	seen := make(map[key]struct{}, capHint)
	out := make([]TypedResult, 0, capHint)
	for _, r := range all {
		kk := key{r.Type, r.ID}
		if _, dup := seen[kk]; dup {
			continue
		}
		seen[kk] = struct{}{}
		out = append(out, r)
		if len(out) == k {
			break
		}
	}
	return out
}

// GetVector reads the visible vector of one vertex (used by VECTOR_DIST
// expressions over attributes and by similarity joins).
func (e *Engine) GetVector(ref graph.EmbeddingRef, id uint64, tid txn.TID) ([]float32, bool) {
	v, ok, _ := e.GetVectorPinned(ref, id, tid, false)
	return v, ok
}

// GetVectorPinned reads like GetVector but fails loudly where GetVector
// degrades: an unmaterialized attribute is an error (not an
// indistinguishable "vertex has no embedding"), and, when pinned, a
// snapshot the vacuum already merged past is rejected — the same
// repeatable-read contract EmbeddingAction and RangeAction enforce.
func (e *Engine) GetVectorPinned(ref graph.EmbeddingRef, id uint64, tid txn.TID, pinned bool) ([]float32, bool, error) {
	store, ok := e.Emb.Store(core.AttrKey(ref.VertexType, ref.Attr))
	if !ok {
		return nil, false, fmt.Errorf("engine: embedding attribute %s is not materialized", ref)
	}
	if tid == 0 {
		tid = e.Mgr.Visible()
	}
	ctx := store.BeginSearch(tid)
	defer ctx.Close()
	if err := staleSnapshotErr(ctx, store.Key, pinned); err != nil {
		return nil, false, err
	}
	v, ok := ctx.GetVector(id)
	return v, ok, nil
}
