// Package engine implements the MPP execution framework (paper Secs. 3
// and 5): the parallel primitives VertexAction, EdgeAction and
// EmbeddingAction operating over vertex segments and embedding segments,
// pre-filter bitmaps, the brute-force fallback threshold, and the
// in-flight query gauge the vacuum's thread tuner monitors.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Engine executes actions over one graph store and its embedding service.
type Engine struct {
	G   *graph.Store
	Emb *core.Service
	Mgr *txn.Manager

	// Parallelism is the worker-pool width for per-segment tasks.
	// Defaults to GOMAXPROCS.
	Parallelism int

	inflight     atomic.Int64 // guarded by atomic
	planCounters planCounters
}

// planCounters accumulates filtered-search planner activity for the
// /stats observability surface.
type planCounters struct {
	filtered                     atomic.Int64 // guarded by atomic
	brute, bitmap, post, skipped atomic.Int64 // guarded by atomic
}

func (p *planCounters) record(s *core.PlanSummary) {
	if s == nil {
		return
	}
	p.filtered.Add(1)
	p.brute.Add(int64(s.Brute))
	p.bitmap.Add(int64(s.Bitmap))
	p.post.Add(int64(s.Post))
	p.skipped.Add(int64(s.Skipped))
}

// PlanCounterSnapshot is a point-in-time copy of the planner counters:
// how many filtered searches ran and how many segment scans each
// strategy executed (or skipped) since start.
type PlanCounterSnapshot struct {
	FilteredSearches int64
	BruteSegments    int64
	BitmapSegments   int64
	PostSegments     int64
	SkippedSegments  int64
}

// PlanCounters returns the accumulated filtered-search planner counters.
func (e *Engine) PlanCounters() PlanCounterSnapshot {
	return PlanCounterSnapshot{
		FilteredSearches: e.planCounters.filtered.Load(),
		BruteSegments:    e.planCounters.brute.Load(),
		BitmapSegments:   e.planCounters.bitmap.Load(),
		PostSegments:     e.planCounters.post.Load(),
		SkippedSegments:  e.planCounters.skipped.Load(),
	}
}

// New creates an engine.
func New(g *graph.Store, emb *core.Service, mgr *txn.Manager) *Engine {
	return &Engine{G: g, Emb: emb, Mgr: mgr, Parallelism: runtime.GOMAXPROCS(0)}
}

// Load reports foreground pressure in [0,1] for the vacuum thread tuner:
// the fraction of the worker budget currently occupied by queries.
func (e *Engine) Load() float64 {
	p := e.Parallelism
	if p <= 0 {
		p = 1
	}
	l := float64(e.inflight.Load()) / float64(p)
	if l > 1 {
		return 1
	}
	return l
}

// EnterQuery and LeaveQuery bracket query execution for the load gauge.
func (e *Engine) EnterQuery() { e.inflight.Add(1) }

// LeaveQuery decrements the in-flight gauge.
func (e *Engine) LeaveQuery() { e.inflight.Add(-1) }

// VertexSet is the unit of composition between query blocks: a set of
// vertices of one type represented as a bitmap over vertex ids.
type VertexSet struct {
	Type   string
	Bitmap *storage.Bitmap
}

// NewVertexSet builds a set from explicit ids.
func NewVertexSet(typeName string, ids []uint64) *VertexSet {
	b := storage.NewBitmap(0)
	for _, id := range ids {
		b.Set(int(id))
	}
	return &VertexSet{Type: typeName, Bitmap: b}
}

// IDs returns the member ids in ascending order.
func (s *VertexSet) IDs() []uint64 {
	if s == nil || s.Bitmap == nil {
		return nil
	}
	var out []uint64
	s.Bitmap.Range(func(i int) bool {
		out = append(out, uint64(i))
		return true
	})
	return out
}

// Size returns the member count.
func (s *VertexSet) Size() int {
	if s == nil || s.Bitmap == nil {
		return 0
	}
	return s.Bitmap.Count()
}

// Contains reports membership.
func (s *VertexSet) Contains(id uint64) bool {
	return s != nil && s.Bitmap != nil && s.Bitmap.Get(int(id))
}

// Union returns s ∪ o (same type required).
func (s *VertexSet) Union(o *VertexSet) (*VertexSet, error) {
	if s.Type != o.Type {
		return nil, fmt.Errorf("engine: UNION of different vertex types %q and %q", s.Type, o.Type)
	}
	b := s.Bitmap.Clone()
	b.Or(o.Bitmap)
	return &VertexSet{Type: s.Type, Bitmap: b}, nil
}

// Intersect returns s ∩ o.
func (s *VertexSet) Intersect(o *VertexSet) (*VertexSet, error) {
	if s.Type != o.Type {
		return nil, fmt.Errorf("engine: INTERSECT of different vertex types %q and %q", s.Type, o.Type)
	}
	b := s.Bitmap.Clone()
	b.And(o.Bitmap)
	return &VertexSet{Type: s.Type, Bitmap: b}, nil
}

// Minus returns s \ o.
func (s *VertexSet) Minus(o *VertexSet) (*VertexSet, error) {
	if s.Type != o.Type {
		return nil, fmt.Errorf("engine: MINUS of different vertex types %q and %q", s.Type, o.Type)
	}
	b := s.Bitmap.Clone()
	b.AndNot(o.Bitmap)
	return &VertexSet{Type: s.Type, Bitmap: b}, nil
}

// Pred is a per-vertex predicate; nil admits all.
type Pred func(id uint64) (bool, error)

// VertexAction scans all live vertices of a type in parallel across
// segments and returns those satisfying pred.
func (e *Engine) VertexAction(typeName string, pred Pred) (*VertexSet, error) {
	dir, err := e.G.Directory(typeName)
	if err != nil {
		return nil, err
	}
	status, err := e.G.Status(typeName)
	if err != nil {
		return nil, err
	}
	segs := dir.Segments()
	out := storage.NewBitmap(dir.NumVertices())
	var firstErr error
	var errMu sync.Mutex
	e.forEachParallel(nil, len(segs), func(si int) {
		seg := segs[si]
		base := seg.Base()
		for off := 0; off < seg.Len(); off++ {
			id := base + uint64(off)
			if !status.Get(int(id)) {
				continue
			}
			if pred != nil {
				ok, err := pred(id)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				if !ok {
					continue
				}
			}
			out.Set(int(id))
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return &VertexSet{Type: typeName, Bitmap: out}, nil
}

// Direction selects edge traversal orientation.
type Direction uint8

const (
	// Out follows edges from source to target.
	Out Direction = iota
	// In follows edges from target back to source.
	In
)

// EdgeAction expands a vertex set across one edge type in parallel and
// returns the distinct reachable vertices (of the opposite endpoint type)
// satisfying pred.
func (e *Engine) EdgeAction(input *VertexSet, edgeName string, dir Direction, pred Pred) (*VertexSet, error) {
	et, ok := e.G.Schema().EdgeType(edgeName)
	if !ok {
		return nil, fmt.Errorf("engine: unknown edge type %q", edgeName)
	}
	var targetType string
	neighbors := e.G.OutNeighbors
	if dir == Out {
		if input.Type != et.From && !(et.Directed == false && input.Type == et.To) {
			return nil, fmt.Errorf("engine: edge %q cannot leave vertex type %q", edgeName, input.Type)
		}
		targetType = et.To
		if input.Type == et.To && !et.Directed {
			targetType = et.From
		}
	} else {
		if input.Type != et.To && !(et.Directed == false && input.Type == et.From) {
			return nil, fmt.Errorf("engine: edge %q cannot enter vertex type %q", edgeName, input.Type)
		}
		targetType = et.From
		if input.Type == et.From && !et.Directed {
			targetType = et.To
		}
		neighbors = e.G.InNeighbors
	}
	targetStatus, err := e.G.Status(targetType)
	if err != nil {
		return nil, err
	}
	ids := input.IDs()
	out := storage.NewBitmap(0)
	var outMu sync.Mutex
	var firstErr error
	var errMu sync.Mutex
	e.forEachParallel(nil, len(ids), func(i int) {
		for _, nb := range neighbors(edgeName, ids[i]) {
			if !targetStatus.Get(int(nb)) {
				continue
			}
			if pred != nil {
				ok, err := pred(nb)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				if !ok {
					continue
				}
			}
			outMu.Lock()
			out.Set(int(nb))
			outMu.Unlock()
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return &VertexSet{Type: targetType, Bitmap: out}, nil
}

// forEachParallel runs fn(0..n-1) over the engine worker pool. A nil
// ctx never cancels; a cancelled ctx stops the dispatch of further
// indices — fn calls already started run to completion, so callers see
// at most one in-flight task per worker after cancellation.
func (e *Engine) forEachParallel(ctx context.Context, n int, fn func(i int)) {
	p := e.Parallelism
	if p <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if ctxErr(ctx) != nil {
				return
			}
			fn(i)
		}
		return
	}
	if p > n {
		p = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctxErr(ctx) != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
