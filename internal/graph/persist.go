package graph

// This file implements the graph half of checkpointing: a binary snapshot
// of every vertex store (allocated slots, columnar attribute values, the
// live-status bitmap) and every edge store (raw adjacency). The schema is
// NOT part of the snapshot — it is recovered first by replaying the
// catalog (DDL) log, after which ReadSnapshot restores the data into the
// freshly created stores. Primary-key indexes are rebuilt from the
// restored attribute values rather than serialized.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/storage"
)

const (
	graphSnapMagic   = uint32(0x54475653) // "TGVS"
	graphSnapVersion = uint32(1)
)

type snapWriter struct {
	w   *bufio.Writer
	err error
}

func (s *snapWriter) u8(v uint8) {
	if s.err == nil {
		s.err = s.w.WriteByte(v)
	}
}

func (s *snapWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	if s.err == nil {
		_, s.err = s.w.Write(b[:])
	}
}

func (s *snapWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	if s.err == nil {
		_, s.err = s.w.Write(b[:])
	}
}

func (s *snapWriter) str(v string) {
	s.u32(uint32(len(v)))
	if s.err == nil {
		_, s.err = s.w.WriteString(v)
	}
}

func (s *snapWriter) value(t storage.AttrType, v storage.Value) {
	switch t {
	case storage.TInt:
		s.u64(uint64(v.(int64)))
	case storage.TFloat:
		s.u64(math.Float64bits(v.(float64)))
	case storage.TString:
		s.str(v.(string))
	case storage.TBool:
		if v.(bool) {
			s.u8(1)
		} else {
			s.u8(0)
		}
	default:
		if s.err == nil {
			s.err = fmt.Errorf("graph: snapshot: unsupported attribute type %v", t)
		}
	}
}

type snapReader struct {
	r *bufio.Reader
}

func (s *snapReader) u8() (uint8, error) { return s.r.ReadByte() }

func (s *snapReader) u32() (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(s.r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (s *snapReader) u64() (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(s.r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func (s *snapReader) str() (string, error) {
	n, err := s.u32()
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		// A corrupt length must fail the parse, not drive a giant
		// allocation that OOM-kills recovery.
		return "", fmt.Errorf("graph: snapshot: string length %d implausible", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(s.r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// capHint bounds a pre-allocation by what a plausible snapshot holds;
// the data itself is read incrementally, so a corrupt count just hits
// EOF instead of allocating gigabytes up front.
func capHint(n uint64) int {
	if n > 65536 {
		return 65536
	}
	return int(n)
}

func (s *snapReader) value(t storage.AttrType) (storage.Value, error) {
	switch t {
	case storage.TInt:
		v, err := s.u64()
		return int64(v), err
	case storage.TFloat:
		v, err := s.u64()
		return math.Float64frombits(v), err
	case storage.TString:
		return s.str()
	case storage.TBool:
		v, err := s.u8()
		return v != 0, err
	}
	return nil, fmt.Errorf("graph: snapshot: unsupported attribute type %v", t)
}

// WriteSnapshot encodes every vertex and edge store to w. The caller must
// ensure no mutations run concurrently (the DB holds its checkpoint lock).
func (g *Store) WriteSnapshot(w io.Writer) error {
	sw := &snapWriter{w: bufio.NewWriter(w)}
	sw.u32(graphSnapMagic)
	sw.u32(graphSnapVersion)

	g.mu.RLock()
	vnames := make([]string, 0, len(g.verts))
	for n := range g.verts {
		vnames = append(vnames, n)
	}
	enames := make([]string, 0, len(g.edges))
	for n := range g.edges {
		enames = append(enames, n)
	}
	g.mu.RUnlock()
	sort.Strings(vnames)
	sort.Strings(enames)

	sw.u32(uint32(len(vnames)))
	for _, name := range vnames {
		g.mu.RLock()
		vs := g.verts[name]
		g.mu.RUnlock()
		sw.str(name)
		schema := vs.typ.Attrs
		sw.u32(uint32(len(schema)))
		for _, a := range schema {
			sw.str(a.Name)
			sw.u8(uint8(a.Type))
		}
		n := vs.dir.NumVertices()
		sw.u64(uint64(n))
		for id := uint64(0); id < uint64(n); id++ {
			seg := vs.dir.SegmentFor(id)
			for _, a := range schema {
				v, err := seg.Attr(id, a.Name)
				if err != nil {
					return fmt.Errorf("graph: snapshot %s[%d].%s: %w", name, id, a.Name, err)
				}
				sw.value(a.Type, v)
			}
		}
		// Live-status bits, packed 8 per byte.
		for base := 0; base < n; base += 8 {
			var b uint8
			for bit := 0; bit < 8 && base+bit < n; bit++ {
				if vs.status.Get(base + bit) {
					b |= 1 << bit
				}
			}
			sw.u8(b)
		}
	}

	sw.u32(uint32(len(enames)))
	for _, name := range enames {
		g.mu.RLock()
		es := g.edges[name]
		g.mu.RUnlock()
		es.mu.RLock()
		sw.str(name)
		sw.u64(uint64(es.n))
		for _, adj := range [][][]uint64{es.out, es.in} {
			sw.u64(uint64(len(adj)))
			for _, nbrs := range adj {
				sw.u32(uint32(len(nbrs)))
				for _, t := range nbrs {
					sw.u64(t)
				}
			}
		}
		es.mu.RUnlock()
	}
	if sw.err != nil {
		return sw.err
	}
	return sw.w.Flush()
}

// ReadSnapshot restores a snapshot written by WriteSnapshot into this
// store. The schema must already contain every vertex and edge type named
// in the snapshot (it is recovered from the catalog log first), and the
// named types must hold no data yet.
func (g *Store) ReadSnapshot(r io.Reader) error {
	sr := &snapReader{r: bufio.NewReader(r)}
	magic, err := sr.u32()
	if err != nil {
		return fmt.Errorf("graph: snapshot: %w", err)
	}
	if magic != graphSnapMagic {
		return fmt.Errorf("graph: snapshot: bad magic %#x", magic)
	}
	version, err := sr.u32()
	if err != nil {
		return err
	}
	if version != graphSnapVersion {
		return fmt.Errorf("graph: snapshot: unsupported version %d", version)
	}

	nv, err := sr.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < nv; i++ {
		name, err := sr.str()
		if err != nil {
			return err
		}
		vs, err := g.vertexStoreFor(name)
		if err != nil {
			return fmt.Errorf("graph: snapshot names vertex type missing from catalog: %w", err)
		}
		if vs.dir.NumVertices() != 0 {
			return fmt.Errorf("graph: snapshot restore into non-empty vertex store %q", name)
		}
		na, err := sr.u32()
		if err != nil {
			return err
		}
		if na > 1<<16 {
			return fmt.Errorf("graph: snapshot: attribute count %d implausible", na)
		}
		schema := make([]storage.AttrSchema, na)
		for j := range schema {
			if schema[j].Name, err = sr.str(); err != nil {
				return err
			}
			t, err := sr.u8()
			if err != nil {
				return err
			}
			schema[j].Type = storage.AttrType(t)
			cur, ok := vs.typ.Attr(schema[j].Name)
			if !ok || cur.Type != schema[j].Type {
				return fmt.Errorf("graph: snapshot attribute %s.%s (%v) does not match catalog", name, schema[j].Name, schema[j].Type)
			}
		}
		n, err := sr.u64()
		if err != nil {
			return err
		}
		for id := uint64(0); id < n; id++ {
			got := vs.dir.Allocate()
			if got != id {
				return fmt.Errorf("graph: snapshot restore allocated id %d, want %d", got, id)
			}
			seg := vs.dir.SegmentFor(id)
			for _, a := range schema {
				v, err := sr.value(a.Type)
				if err != nil {
					return err
				}
				if err := seg.SetAttr(id, a.Name, v); err != nil {
					return err
				}
			}
		}
		for base := uint64(0); base < n; base += 8 {
			b, err := sr.u8()
			if err != nil {
				return err
			}
			for bit := uint64(0); bit < 8 && base+bit < n; bit++ {
				if b&(1<<bit) != 0 {
					vs.status.Set(int(base + bit))
				}
			}
		}
		// Rebuild the primary-key index from the restored attributes. Slot
		// order matches insertion order, so on duplicate keys (a tombstone
		// whose key was later reused) the newest slot wins, as it did live.
		if vs.typ.PrimaryKey != "" {
			vs.pkMu.Lock()
			for id := uint64(0); id < n; id++ {
				v, err := vs.dir.SegmentFor(id).Attr(id, vs.typ.PrimaryKey)
				if err != nil {
					vs.pkMu.Unlock()
					return err
				}
				vs.pk[v] = id
			}
			vs.pkMu.Unlock()
		}
	}

	ne, err := sr.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < ne; i++ {
		name, err := sr.str()
		if err != nil {
			return err
		}
		es, err := g.edgeStoreFor(name)
		if err != nil {
			return fmt.Errorf("graph: snapshot names edge type missing from catalog: %w", err)
		}
		n, err := sr.u64()
		if err != nil {
			return err
		}
		var adjs [2][][]uint64
		for k := 0; k < 2; k++ {
			ln, err := sr.u64()
			if err != nil {
				return err
			}
			adj := make([][]uint64, 0, capHint(ln))
			for v := uint64(0); v < ln; v++ {
				deg, err := sr.u32()
				if err != nil {
					return err
				}
				nbrs := make([]uint64, 0, capHint(uint64(deg)))
				for d := uint32(0); d < deg; d++ {
					t, err := sr.u64()
					if err != nil {
						return err
					}
					nbrs = append(nbrs, t)
				}
				if len(nbrs) == 0 {
					nbrs = nil
				}
				adj = append(adj, nbrs)
			}
			adjs[k] = adj
		}
		es.mu.Lock()
		if es.n != 0 {
			es.mu.Unlock()
			return fmt.Errorf("graph: snapshot restore into non-empty edge store %q", name)
		}
		es.out, es.in, es.n = adjs[0], adjs[1], int(n)
		es.mu.Unlock()
	}
	return nil
}
