package graph

import (
	"fmt"
	"sync"

	"repro/internal/storage"
)

// Store holds the vertices and edges of one graph. Vertex ids are dense
// per vertex type (segment index * segment size + offset). Scalar
// attributes live in vertex segments; embedding attributes are managed by
// the embedding service in internal/core and never touch this store
// (decoupled storage, paper Sec. 4.2).
type Store struct {
	schema  *Schema
	segSize int

	mu    sync.RWMutex
	verts map[string]*vertexStore
	edges map[string]*edgeStore
}

type vertexStore struct {
	typ    *VertexType
	dir    *storage.SegmentDirectory
	status *storage.Bitmap // live (not deleted) vertices; wrapped as the vector-search filter

	pkMu sync.RWMutex
	pk   map[storage.Value]uint64
}

type edgeStore struct {
	typ *EdgeType
	mu  sync.RWMutex
	out [][]uint64 // indexed by From-type vertex id
	in  [][]uint64 // indexed by To-type vertex id
	n   int
}

// NewStore creates an empty store over schema with the given segment size
// (0 means storage.DefaultSegmentSize).
func NewStore(schema *Schema, segSize int) *Store {
	if segSize <= 0 {
		segSize = storage.DefaultSegmentSize
	}
	return &Store{
		schema:  schema,
		segSize: segSize,
		verts:   make(map[string]*vertexStore),
		edges:   make(map[string]*edgeStore),
	}
}

// Schema returns the catalog.
func (g *Store) Schema() *Schema { return g.schema }

// SegmentSize returns the configured vertices-per-segment.
func (g *Store) SegmentSize() int { return g.segSize }

func (g *Store) vertexStoreFor(typeName string) (*vertexStore, error) {
	g.mu.RLock()
	vs, ok := g.verts[typeName]
	g.mu.RUnlock()
	if ok {
		return vs, nil
	}
	vt, ok := g.schema.VertexType(typeName)
	if !ok {
		return nil, fmt.Errorf("graph: unknown vertex type %q", typeName)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if vs, ok := g.verts[typeName]; ok {
		return vs, nil
	}
	vs = &vertexStore{
		typ:    vt,
		dir:    storage.NewSegmentDirectory(g.segSize, vt.Attrs),
		status: storage.NewBitmap(0),
		pk:     make(map[storage.Value]uint64),
	}
	g.verts[typeName] = vs
	return vs, nil
}

func (g *Store) edgeStoreFor(edgeName string) (*edgeStore, error) {
	g.mu.RLock()
	es, ok := g.edges[edgeName]
	g.mu.RUnlock()
	if ok {
		return es, nil
	}
	et, ok := g.schema.EdgeType(edgeName)
	if !ok {
		return nil, fmt.Errorf("graph: unknown edge type %q", edgeName)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if es, ok := g.edges[edgeName]; ok {
		return es, nil
	}
	es = &edgeStore{typ: et}
	g.edges[edgeName] = es
	return es, nil
}

// AddVertex inserts a vertex with the given attribute values and returns
// its id. If the type has a primary key and a vertex with the same key
// exists, the existing vertex is updated (upsert) and its id returned.
//
// Every attribute is validated before any state is touched: a rejected
// insert must leave no trace — neither a consumed slot (dense id
// allocation is what makes WAL replay deterministic) nor a partial
// attribute update on the upsert path.
func (g *Store) AddVertex(typeName string, attrs map[string]storage.Value) (uint64, error) {
	vs, err := g.vertexStoreFor(typeName)
	if err != nil {
		return 0, err
	}
	checked := make(map[string]storage.Value, len(attrs))
	for name, v := range attrs {
		a, ok := vs.typ.Attr(name)
		if !ok {
			return 0, fmt.Errorf("graph: vertex type %q has no attribute %q", typeName, name)
		}
		cv, err := storage.CheckValue(a.Type, v)
		if err != nil {
			return 0, err
		}
		checked[name] = cv
	}
	var pkVal storage.Value
	if vs.typ.PrimaryKey != "" {
		v, ok := checked[vs.typ.PrimaryKey]
		if !ok {
			return 0, fmt.Errorf("graph: vertex of type %q missing primary key %q", typeName, vs.typ.PrimaryKey)
		}
		pkVal = v
		vs.pkMu.Lock()
		if id, exists := vs.pk[pkVal]; exists {
			vs.pkMu.Unlock()
			for name, v := range checked {
				if err := g.SetAttr(typeName, id, name, v); err != nil {
					return 0, err
				}
			}
			vs.status.Set(int(id)) // revive if tombstoned
			return id, nil
		}
		vs.pkMu.Unlock()
	}
	id := vs.dir.Allocate()
	seg := vs.dir.SegmentFor(id)
	for name, v := range checked {
		if err := seg.SetAttr(id, name, v); err != nil {
			return 0, err
		}
	}
	vs.status.Set(int(id))
	if vs.typ.PrimaryKey != "" {
		vs.pkMu.Lock()
		vs.pk[pkVal] = id
		vs.pkMu.Unlock()
	}
	return id, nil
}

// VertexByKey resolves a primary key to a vertex id.
func (g *Store) VertexByKey(typeName string, key storage.Value) (uint64, bool) {
	vs, err := g.vertexStoreFor(typeName)
	if err != nil {
		return 0, false
	}
	pkAttr, ok := vs.typ.Attr(vs.typ.PrimaryKey)
	if !ok {
		return 0, false
	}
	cv, err := storage.CheckValue(pkAttr.Type, key)
	if err != nil {
		return 0, false
	}
	vs.pkMu.RLock()
	id, ok := vs.pk[cv]
	vs.pkMu.RUnlock()
	if !ok || !vs.status.Get(int(id)) {
		return 0, false
	}
	return id, true
}

// SetAttr updates one scalar attribute of an existing vertex.
func (g *Store) SetAttr(typeName string, id uint64, name string, v storage.Value) error {
	vs, err := g.vertexStoreFor(typeName)
	if err != nil {
		return err
	}
	seg := vs.dir.SegmentFor(id)
	if seg == nil {
		return fmt.Errorf("graph: vertex %d of type %q does not exist", id, typeName)
	}
	return seg.SetAttr(id, name, v)
}

// Attr reads one scalar attribute.
func (g *Store) Attr(typeName string, id uint64, name string) (storage.Value, error) {
	vs, err := g.vertexStoreFor(typeName)
	if err != nil {
		return nil, err
	}
	seg := vs.dir.SegmentFor(id)
	if seg == nil {
		return nil, fmt.Errorf("graph: vertex %d of type %q does not exist", id, typeName)
	}
	return seg.Attr(id, name)
}

// DeleteVertex tombstones a vertex; attributes remain until segment
// rebuild but the vertex disappears from status bitmaps and traversals.
func (g *Store) DeleteVertex(typeName string, id uint64) error {
	vs, err := g.vertexStoreFor(typeName)
	if err != nil {
		return err
	}
	if vs.dir.SegmentFor(id) == nil {
		return fmt.Errorf("graph: vertex %d of type %q does not exist", id, typeName)
	}
	vs.status.Clear(int(id))
	return nil
}

// Alive reports whether the vertex exists and is not deleted.
func (g *Store) Alive(typeName string, id uint64) bool {
	vs, err := g.vertexStoreFor(typeName)
	if err != nil {
		return false
	}
	return vs.status.Get(int(id))
}

// Status returns the live-vertex bitmap for a type. The engine wraps this
// directly as the vector-search filter for unfiltered queries.
func (g *Store) Status(typeName string) (*storage.Bitmap, error) {
	vs, err := g.vertexStoreFor(typeName)
	if err != nil {
		return nil, err
	}
	return vs.status, nil
}

// NumVertices returns the allocated vertex count of a type (including
// tombstones).
func (g *Store) NumVertices(typeName string) int {
	vs, err := g.vertexStoreFor(typeName)
	if err != nil {
		return 0
	}
	return vs.dir.NumVertices()
}

// NumAlive returns the live vertex count.
func (g *Store) NumAlive(typeName string) int {
	vs, err := g.vertexStoreFor(typeName)
	if err != nil {
		return 0
	}
	return vs.status.Count()
}

// NumSegments returns the segment count of a type.
func (g *Store) NumSegments(typeName string) int {
	vs, err := g.vertexStoreFor(typeName)
	if err != nil {
		return 0
	}
	return vs.dir.NumSegments()
}

// Directory exposes the segment directory of a vertex type for the MPP
// engine's per-segment actions.
func (g *Store) Directory(typeName string) (*storage.SegmentDirectory, error) {
	vs, err := g.vertexStoreFor(typeName)
	if err != nil {
		return nil, err
	}
	return vs.dir, nil
}

func (e *edgeStore) growTo(out, in uint64) {
	for uint64(len(e.out)) <= out {
		e.out = append(e.out, nil)
	}
	for uint64(len(e.in)) <= in {
		e.in = append(e.in, nil)
	}
}

// AddEdge inserts an edge from -> to. For undirected edge types the edge
// is traversable in both directions via OutNeighbors.
func (g *Store) AddEdge(edgeName string, from, to uint64) error {
	es, err := g.edgeStoreFor(edgeName)
	if err != nil {
		return err
	}
	if !g.Alive(es.typ.From, from) {
		return fmt.Errorf("graph: edge %q source vertex %d (%s) does not exist", edgeName, from, es.typ.From)
	}
	if !g.Alive(es.typ.To, to) {
		return fmt.Errorf("graph: edge %q target vertex %d (%s) does not exist", edgeName, to, es.typ.To)
	}
	es.mu.Lock()
	es.growTo(from, to)
	es.out[from] = append(es.out[from], to)
	es.in[to] = append(es.in[to], from)
	if !es.typ.Directed {
		// Undirected edges between the same type are mirrored.
		es.growTo(to, from)
		es.out[to] = append(es.out[to], from)
		es.in[from] = append(es.in[from], to)
	}
	es.n++
	es.mu.Unlock()
	return nil
}

// OutNeighbors returns the targets of edges leaving `from`.
func (g *Store) OutNeighbors(edgeName string, from uint64) []uint64 {
	es, err := g.edgeStoreFor(edgeName)
	if err != nil {
		return nil
	}
	es.mu.RLock()
	defer es.mu.RUnlock()
	if from >= uint64(len(es.out)) {
		return nil
	}
	out := make([]uint64, len(es.out[from]))
	copy(out, es.out[from])
	return out
}

// InNeighbors returns the sources of edges entering `to`.
func (g *Store) InNeighbors(edgeName string, to uint64) []uint64 {
	es, err := g.edgeStoreFor(edgeName)
	if err != nil {
		return nil
	}
	es.mu.RLock()
	defer es.mu.RUnlock()
	if to >= uint64(len(es.in)) {
		return nil
	}
	out := make([]uint64, len(es.in[to]))
	copy(out, es.in[to])
	return out
}

// NumEdges returns the edge count of a type (undirected edges count once).
func (g *Store) NumEdges(edgeName string) int {
	es, err := g.edgeStoreFor(edgeName)
	if err != nil {
		return 0
	}
	es.mu.RLock()
	defer es.mu.RUnlock()
	return es.n
}

// ForEachAlive calls fn for every live vertex id of a type, in ascending
// id order.
func (g *Store) ForEachAlive(typeName string, fn func(id uint64) bool) error {
	vs, err := g.vertexStoreFor(typeName)
	if err != nil {
		return err
	}
	vs.status.Range(func(i int) bool { return fn(uint64(i)) })
	return nil
}
