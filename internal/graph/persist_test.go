package graph

import (
	"bytes"
	"testing"

	"repro/internal/storage"
)

func snapshotFixture(t *testing.T) (*Schema, *Store) {
	t.Helper()
	sch := NewSchema()
	if err := sch.AddVertexType(VertexType{
		Name: "Post", PrimaryKey: "id",
		Attrs: []storage.AttrSchema{
			{Name: "id", Type: storage.TInt},
			{Name: "score", Type: storage.TFloat},
			{Name: "lang", Type: storage.TString},
			{Name: "hot", Type: storage.TBool},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sch.AddVertexType(VertexType{
		Name:  "Tag",
		Attrs: []storage.AttrSchema{{Name: "name", Type: storage.TString}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sch.AddEdgeType(EdgeType{Name: "Tagged", From: "Post", To: "Tag", Directed: true}); err != nil {
		t.Fatal(err)
	}
	if err := sch.AddEdgeType(EdgeType{Name: "Related", From: "Post", To: "Post", Directed: false}); err != nil {
		t.Fatal(err)
	}
	g := NewStore(sch, 4) // tiny segments so the snapshot spans several
	for i := 0; i < 10; i++ {
		_, err := g.AddVertex("Post", map[string]storage.Value{
			"id": int64(i), "score": float64(i) / 2, "lang": "en", "hot": i%2 == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := g.AddVertex("Tag", map[string]storage.Value{"name": "t"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.DeleteVertex("Post", 7); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("Tagged", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("Tagged", 3, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("Related", 0, 3); err != nil {
		t.Fatal(err)
	}
	return sch, g
}

func TestGraphSnapshotRoundTrip(t *testing.T) {
	sch, g := snapshotFixture(t)
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	g2 := NewStore(sch, 4)
	if err := g2.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices("Post") != 10 || g2.NumAlive("Post") != 9 {
		t.Fatalf("Post counts = %d/%d", g2.NumVertices("Post"), g2.NumAlive("Post"))
	}
	if g2.Alive("Post", 7) {
		t.Fatal("tombstone resurrected")
	}
	for _, id := range []uint64{0, 5, 9} {
		v, err := g2.Attr("Post", id, "score")
		if err != nil || v.(float64) != float64(id)/2 {
			t.Fatalf("Post[%d].score = %v, %v", id, v, err)
		}
		h, _ := g2.Attr("Post", id, "hot")
		if h.(bool) != (id%2 == 0) {
			t.Fatalf("Post[%d].hot = %v", id, h)
		}
	}
	// Primary-key index rebuilt.
	if id, ok := g2.VertexByKey("Post", int64(5)); !ok || id != 5 {
		t.Fatalf("VertexByKey(5) = %d, %v", id, ok)
	}
	if _, ok := g2.VertexByKey("Post", int64(7)); ok {
		t.Fatal("tombstoned key resolvable")
	}
	// Adjacency, both directions, directed and undirected.
	if got := g2.OutNeighbors("Tagged", 0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Tagged out(0) = %v", got)
	}
	if got := g2.InNeighbors("Tagged", 2); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Tagged in(2) = %v", got)
	}
	if got := g2.OutNeighbors("Related", 3); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Related out(3) = %v", got)
	}
	if g2.NumEdges("Tagged") != 2 || g2.NumEdges("Related") != 1 {
		t.Fatalf("edge counts = %d, %d", g2.NumEdges("Tagged"), g2.NumEdges("Related"))
	}
	// Id allocation continues where the snapshot left off.
	id, err := g2.AddVertex("Post", map[string]storage.Value{"id": int64(100)})
	if err != nil || id != 10 {
		t.Fatalf("post-restore allocation = %d, %v", id, err)
	}
	// Upsert by recovered primary key reuses the old slot.
	id, err = g2.AddVertex("Post", map[string]storage.Value{"id": int64(3), "lang": "fr"})
	if err != nil || id != 3 {
		t.Fatalf("post-restore upsert = %d, %v", id, err)
	}
}

func TestGraphSnapshotRejectsMismatch(t *testing.T) {
	_, g := snapshotFixture(t)
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Restoring without the catalog fails loudly.
	if err := NewStore(NewSchema(), 4).ReadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore without schema succeeded")
	}
	// Restoring into a non-empty store fails loudly.
	sch2, g2 := snapshotFixture(t)
	_ = sch2
	if err := g2.ReadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore into non-empty store succeeded")
	}
	// Garbage is rejected.
	if err := g.ReadSnapshot(bytes.NewReader([]byte("junkjunkjunk"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
