package graph

import (
	"strings"
	"testing"

	"repro/internal/storage"
	"repro/internal/vectormath"
)

func ldbcSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddVertexType(VertexType{
		Name:       "Person",
		PrimaryKey: "id",
		Attrs: []storage.AttrSchema{
			{Name: "id", Type: storage.TInt},
			{Name: "firstName", Type: storage.TString},
			{Name: "cid", Type: storage.TInt},
		},
	}))
	must(s.AddVertexType(VertexType{
		Name:       "Post",
		PrimaryKey: "id",
		Attrs: []storage.AttrSchema{
			{Name: "id", Type: storage.TInt},
			{Name: "author", Type: storage.TString},
			{Name: "content", Type: storage.TString},
			{Name: "language", Type: storage.TString},
			{Name: "length", Type: storage.TInt},
		},
	}))
	must(s.AddEdgeType(EdgeType{Name: "knows", From: "Person", To: "Person", Directed: false}))
	must(s.AddEdgeType(EdgeType{Name: "hasCreator", From: "Post", To: "Person", Directed: true}))
	return s
}

func TestSchemaVertexTypeValidation(t *testing.T) {
	s := NewSchema()
	err := s.AddVertexType(VertexType{Name: "V", PrimaryKey: "nope",
		Attrs: []storage.AttrSchema{{Name: "id", Type: storage.TInt}}})
	if err == nil {
		t.Fatal("accepted bad primary key")
	}
	err = s.AddVertexType(VertexType{Name: "V",
		Attrs: []storage.AttrSchema{{Name: "a", Type: storage.TInt}, {Name: "a", Type: storage.TInt}}})
	if err == nil {
		t.Fatal("accepted duplicate attribute")
	}
	if err := s.AddVertexType(VertexType{Name: "V"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddVertexType(VertexType{Name: "V"}); err == nil {
		t.Fatal("accepted duplicate vertex type")
	}
}

func TestSchemaEdgeTypeValidation(t *testing.T) {
	s := ldbcSchema(t)
	if err := s.AddEdgeType(EdgeType{Name: "bad", From: "Nope", To: "Person"}); err == nil {
		t.Fatal("accepted unknown From")
	}
	if err := s.AddEdgeType(EdgeType{Name: "bad", From: "Person", To: "Nope"}); err == nil {
		t.Fatal("accepted unknown To")
	}
	if err := s.AddEdgeType(EdgeType{Name: "knows", From: "Person", To: "Person"}); err == nil {
		t.Fatal("accepted duplicate edge type")
	}
	if names := s.EdgeTypeNames(); len(names) != 2 || names[0] != "hasCreator" {
		t.Fatalf("EdgeTypeNames = %v", names)
	}
}

func TestEmbeddingAttrAndSpace(t *testing.T) {
	s := ldbcSchema(t)
	err := s.AddEmbeddingAttr("Post", EmbeddingAttr{
		Name: "content_emb", Dim: 8, Model: "GPT4", Metric: vectormath.Cosine})
	if err != nil {
		t.Fatal(err)
	}
	vt, _ := s.VertexType("Post")
	ea, ok := vt.Embedding("content_emb")
	if !ok || ea.Index != "HNSW" || ea.DataType != "FLOAT" {
		t.Fatalf("embedding defaults not applied: %+v", ea)
	}
	if err := s.AddEmbeddingAttr("Post", EmbeddingAttr{Name: "content_emb", Dim: 8}); err == nil {
		t.Fatal("accepted duplicate embedding attribute")
	}
	if err := s.AddEmbeddingAttr("Nope", EmbeddingAttr{Name: "x", Dim: 8}); err == nil {
		t.Fatal("accepted unknown vertex type")
	}
	if err := s.AddEmbeddingAttr("Person", EmbeddingAttr{Name: "x", Dim: 0}); err == nil {
		t.Fatal("accepted zero dimension")
	}

	// Embedding space path.
	if err := s.AddEmbeddingSpace(EmbeddingSpace{Name: "gpt4_space", Dim: 8, Model: "GPT4",
		Index: "HNSW", DataType: "FLOAT", Metric: vectormath.Cosine}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEmbeddingSpace(EmbeddingSpace{Name: "gpt4_space", Dim: 8}); err == nil {
		t.Fatal("accepted duplicate space")
	}
	if err := s.AddEmbeddingSpace(EmbeddingSpace{Name: "bad", Dim: 0}); err == nil {
		t.Fatal("accepted zero-dim space")
	}
	if err := s.AddEmbeddingAttr("Person", EmbeddingAttr{Name: "face_emb", Space: "gpt4_space"}); err != nil {
		t.Fatal(err)
	}
	pvt, _ := s.VertexType("Person")
	pea, _ := pvt.Embedding("face_emb")
	if pea.Dim != 8 || pea.Model != "GPT4" || pea.Space != "gpt4_space" {
		t.Fatalf("space-derived attr wrong: %+v", pea)
	}
	if err := s.AddEmbeddingAttr("Person", EmbeddingAttr{Name: "y", Space: "missing"}); err == nil {
		t.Fatal("accepted unknown space")
	}
}

func TestCheckCompatible(t *testing.T) {
	s := ldbcSchema(t)
	s.AddEmbeddingAttr("Post", EmbeddingAttr{Name: "content_emb", Dim: 8, Model: "GPT4", Metric: vectormath.Cosine})
	s.AddEmbeddingAttr("Person", EmbeddingAttr{Name: "bio_emb", Dim: 8, Model: "GPT4", Metric: vectormath.Cosine})
	s.AddEmbeddingAttr("Person", EmbeddingAttr{Name: "img_emb", Dim: 16, Model: "CLIP", Metric: vectormath.L2})

	base, err := s.CheckCompatible([]EmbeddingRef{
		{VertexType: "Post", Attr: "content_emb"},
		{VertexType: "Person", Attr: "bio_emb"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Dim != 8 {
		t.Fatalf("base dim = %d", base.Dim)
	}
	_, err = s.CheckCompatible([]EmbeddingRef{
		{VertexType: "Post", Attr: "content_emb"},
		{VertexType: "Person", Attr: "img_emb"},
	})
	if err == nil || !strings.Contains(err.Error(), "semantic error") {
		t.Fatalf("incompatible attrs accepted: %v", err)
	}
	if _, err := s.CheckCompatible(nil); err == nil {
		t.Fatal("empty refs accepted")
	}
	if _, err := s.CheckCompatible([]EmbeddingRef{{VertexType: "Nope", Attr: "a"}}); err == nil {
		t.Fatal("unknown type accepted")
	}
	if _, err := s.CheckCompatible([]EmbeddingRef{{VertexType: "Post", Attr: "nope"}}); err == nil {
		t.Fatal("unknown attr accepted")
	}
}

func TestParseEmbeddingRef(t *testing.T) {
	r, err := ParseEmbeddingRef("Post.content_emb")
	if err != nil || r.VertexType != "Post" || r.Attr != "content_emb" {
		t.Fatalf("ParseEmbeddingRef = %+v, %v", r, err)
	}
	if r.String() != "Post.content_emb" {
		t.Fatalf("String = %q", r.String())
	}
	for _, bad := range []string{"Post", ".x", "Post.", ""} {
		if _, err := ParseEmbeddingRef(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestStoreVertexLifecycle(t *testing.T) {
	g := NewStore(ldbcSchema(t), 4)
	id, err := g.AddVertex("Person", map[string]storage.Value{"id": int64(1), "firstName": "Alice"})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := g.Attr("Person", id, "firstName"); got.(string) != "Alice" {
		t.Fatalf("firstName = %v", got)
	}
	if !g.Alive("Person", id) {
		t.Fatal("fresh vertex not alive")
	}
	// Upsert by primary key.
	id2, err := g.AddVertex("Person", map[string]storage.Value{"id": int64(1), "firstName": "Alicia"})
	if err != nil || id2 != id {
		t.Fatalf("upsert returned %d, %v; want %d", id2, err, id)
	}
	if got, _ := g.Attr("Person", id, "firstName"); got.(string) != "Alicia" {
		t.Fatalf("after upsert firstName = %v", got)
	}
	if g.NumVertices("Person") != 1 {
		t.Fatalf("NumVertices = %d", g.NumVertices("Person"))
	}
	// Key lookup.
	if got, ok := g.VertexByKey("Person", int64(1)); !ok || got != id {
		t.Fatalf("VertexByKey = %d, %v", got, ok)
	}
	if _, ok := g.VertexByKey("Person", int64(999)); ok {
		t.Fatal("VertexByKey found absent key")
	}
	// Delete.
	if err := g.DeleteVertex("Person", id); err != nil {
		t.Fatal(err)
	}
	if g.Alive("Person", id) || g.NumAlive("Person") != 0 {
		t.Fatal("vertex alive after delete")
	}
	if _, ok := g.VertexByKey("Person", int64(1)); ok {
		t.Fatal("deleted vertex resolvable by key")
	}
	// Re-inserting the key revives the slot.
	id3, err := g.AddVertex("Person", map[string]storage.Value{"id": int64(1), "firstName": "Alice2"})
	if err != nil || id3 != id {
		t.Fatalf("revive = %d, %v", id3, err)
	}
	if !g.Alive("Person", id3) {
		t.Fatal("revived vertex not alive")
	}
}

func TestStoreErrors(t *testing.T) {
	g := NewStore(ldbcSchema(t), 4)
	if _, err := g.AddVertex("Nope", nil); err == nil {
		t.Fatal("AddVertex accepted unknown type")
	}
	if _, err := g.AddVertex("Person", map[string]storage.Value{"firstName": "x"}); err == nil {
		t.Fatal("AddVertex accepted missing primary key")
	}
	if err := g.SetAttr("Person", 99, "firstName", "x"); err == nil {
		t.Fatal("SetAttr accepted absent vertex")
	}
	if _, err := g.Attr("Person", 99, "firstName"); err == nil {
		t.Fatal("Attr accepted absent vertex")
	}
	if err := g.DeleteVertex("Person", 99); err == nil {
		t.Fatal("DeleteVertex accepted absent vertex")
	}
	if err := g.AddEdge("nope", 0, 0); err == nil {
		t.Fatal("AddEdge accepted unknown edge type")
	}
}

func TestStoreEdgesDirected(t *testing.T) {
	g := NewStore(ldbcSchema(t), 4)
	p, _ := g.AddVertex("Person", map[string]storage.Value{"id": int64(1)})
	post1, _ := g.AddVertex("Post", map[string]storage.Value{"id": int64(10)})
	post2, _ := g.AddVertex("Post", map[string]storage.Value{"id": int64(11)})
	if err := g.AddEdge("hasCreator", post1, p); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("hasCreator", post2, p); err != nil {
		t.Fatal(err)
	}
	if out := g.OutNeighbors("hasCreator", post1); len(out) != 1 || out[0] != p {
		t.Fatalf("OutNeighbors = %v", out)
	}
	in := g.InNeighbors("hasCreator", p)
	if len(in) != 2 {
		t.Fatalf("InNeighbors = %v", in)
	}
	if g.NumEdges("hasCreator") != 2 {
		t.Fatalf("NumEdges = %d", g.NumEdges("hasCreator"))
	}
	// Dangling endpoints rejected.
	if err := g.AddEdge("hasCreator", 999, p); err == nil {
		t.Fatal("accepted dangling source")
	}
	if err := g.AddEdge("hasCreator", post1, 999); err == nil {
		t.Fatal("accepted dangling target")
	}
}

func TestStoreEdgesUndirected(t *testing.T) {
	g := NewStore(ldbcSchema(t), 4)
	a, _ := g.AddVertex("Person", map[string]storage.Value{"id": int64(1)})
	b, _ := g.AddVertex("Person", map[string]storage.Value{"id": int64(2)})
	if err := g.AddEdge("knows", a, b); err != nil {
		t.Fatal(err)
	}
	if out := g.OutNeighbors("knows", b); len(out) != 1 || out[0] != a {
		t.Fatalf("undirected reverse traversal = %v", out)
	}
	if out := g.OutNeighbors("knows", a); len(out) != 1 || out[0] != b {
		t.Fatalf("undirected forward traversal = %v", out)
	}
	if g.NumEdges("knows") != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges("knows"))
	}
	if nbrs := g.OutNeighbors("knows", 12345); nbrs != nil {
		t.Fatalf("neighbors of absent vertex = %v", nbrs)
	}
}

func TestStoreForEachAliveAndStatus(t *testing.T) {
	g := NewStore(ldbcSchema(t), 2)
	for i := 0; i < 5; i++ {
		g.AddVertex("Person", map[string]storage.Value{"id": int64(i)})
	}
	g.DeleteVertex("Person", 2)
	var ids []uint64
	g.ForEachAlive("Person", func(id uint64) bool {
		ids = append(ids, id)
		return true
	})
	if len(ids) != 4 {
		t.Fatalf("ForEachAlive = %v", ids)
	}
	st, err := g.Status("Person")
	if err != nil {
		t.Fatal(err)
	}
	if st.Get(2) || !st.Get(3) {
		t.Fatal("status bitmap wrong")
	}
	if g.NumSegments("Person") != 3 {
		t.Fatalf("NumSegments = %d", g.NumSegments("Person"))
	}
	dir, err := g.Directory("Person")
	if err != nil || dir.NumVertices() != 5 {
		t.Fatalf("Directory = %v, %v", dir, err)
	}
}

func TestParseValueAndVector(t *testing.T) {
	if v, err := ParseValue(storage.TInt, " 42 "); err != nil || v.(int64) != 42 {
		t.Fatalf("ParseValue int = %v, %v", v, err)
	}
	if v, err := ParseValue(storage.TFloat, "2.5"); err != nil || v.(float64) != 2.5 {
		t.Fatalf("ParseValue float = %v, %v", v, err)
	}
	if v, err := ParseValue(storage.TBool, "true"); err != nil || v.(bool) != true {
		t.Fatalf("ParseValue bool = %v, %v", v, err)
	}
	if v, err := ParseValue(storage.TString, "hi"); err != nil || v.(string) != "hi" {
		t.Fatalf("ParseValue string = %v, %v", v, err)
	}
	if _, err := ParseValue(storage.TInt, "abc"); err == nil {
		t.Fatal("ParseValue accepted bad int")
	}
	vec, err := ParseVector("0.5:1.5:-2", ":")
	if err != nil || len(vec) != 3 || vec[2] != -2 {
		t.Fatalf("ParseVector = %v, %v", vec, err)
	}
	if _, err := ParseVector("a:b", ":"); err == nil {
		t.Fatal("ParseVector accepted garbage")
	}
}

func TestLoadVerticesCSV(t *testing.T) {
	g := NewStore(ldbcSchema(t), 4)
	csvData := "0,Adam,A birthday party.\n1,Bob,A nice road trip!\n2,Carl,Anyone in NY?\n"
	ids, err := g.LoadVerticesCSV("Post", []string{"id", "author", "content"}, strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("loaded %d", len(ids))
	}
	if v, _ := g.Attr("Post", ids[1], "author"); v.(string) != "Bob" {
		t.Fatalf("author = %v", v)
	}
	// Skipped column.
	ids2, err := g.LoadVerticesCSV("Post", []string{"id", "", "content"}, strings.NewReader("5,ignored,hello\n"))
	if err != nil || len(ids2) != 1 {
		t.Fatal(err)
	}
	if v, _ := g.Attr("Post", ids2[0], "author"); v.(string) != "" {
		t.Fatalf("skipped column wrote author = %v", v)
	}
	// Errors.
	if _, err := g.LoadVerticesCSV("Nope", nil, strings.NewReader("")); err == nil {
		t.Fatal("unknown type accepted")
	}
	if _, err := g.LoadVerticesCSV("Post", []string{"missing"}, strings.NewReader("")); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := g.LoadVerticesCSV("Post", []string{"id"}, strings.NewReader("notanint\n")); err == nil {
		t.Fatal("bad int accepted")
	}
	if _, err := g.LoadVerticesCSV("Post", []string{"id", "author"}, strings.NewReader("1\n")); err == nil {
		t.Fatal("short row accepted")
	}
}

func TestLoadEdgesCSV(t *testing.T) {
	g := NewStore(ldbcSchema(t), 4)
	g.LoadVerticesCSV("Person", []string{"id", "firstName"}, strings.NewReader("1,Alice\n2,Bob\n"))
	g.LoadVerticesCSV("Post", []string{"id", "content"}, strings.NewReader("10,hello\n"))
	n, err := g.LoadEdgesCSV("hasCreator", strings.NewReader("10,1\n"))
	if err != nil || n != 1 {
		t.Fatalf("LoadEdgesCSV = %d, %v", n, err)
	}
	p, _ := g.VertexByKey("Person", int64(1))
	post, _ := g.VertexByKey("Post", int64(10))
	if out := g.OutNeighbors("hasCreator", post); len(out) != 1 || out[0] != p {
		t.Fatalf("edge not loaded: %v", out)
	}
	if _, err := g.LoadEdgesCSV("hasCreator", strings.NewReader("99,1\n")); err == nil {
		t.Fatal("dangling key accepted")
	}
	if _, err := g.LoadEdgesCSV("hasCreator", strings.NewReader("10\n")); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := g.LoadEdgesCSV("nope", strings.NewReader("")); err == nil {
		t.Fatal("unknown edge type accepted")
	}
}
