package graph

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/storage"
)

// This file implements loading jobs (paper Sec. 4.1): vertices and edges
// load from CSV sources; embedding attributes load from separate files
// whose vector column is split on a separator (the embedding side is in
// internal/core, which owns embedding storage).

// ParseValue converts a CSV field into a typed attribute value.
func ParseValue(t storage.AttrType, field string) (storage.Value, error) {
	switch t {
	case storage.TInt:
		v, err := strconv.ParseInt(strings.TrimSpace(field), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: bad INT %q: %w", field, err)
		}
		return v, nil
	case storage.TFloat:
		v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			return nil, fmt.Errorf("graph: bad FLOAT %q: %w", field, err)
		}
		return v, nil
	case storage.TString:
		return field, nil
	case storage.TBool:
		v, err := strconv.ParseBool(strings.TrimSpace(field))
		if err != nil {
			return nil, fmt.Errorf("graph: bad BOOL %q: %w", field, err)
		}
		return v, nil
	}
	return nil, fmt.Errorf("graph: unsupported type %v", t)
}

// ParseVector splits a vector field on sep (the paper's
// split(content_emb, ":") idiom) into a []float32.
func ParseVector(field, sep string) ([]float32, error) {
	parts := strings.Split(field, sep)
	out := make([]float32, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 32)
		if err != nil {
			return nil, fmt.Errorf("graph: bad vector component %q: %w", p, err)
		}
		out[i] = float32(v)
	}
	return out, nil
}

// ParseVertexRowsCSV parses CSV rows into attribute maps for typeName.
// cols names the attribute receiving each CSV column; an empty name skips
// the column. The durable load path uses this to parse everything up
// front, then inserts the rows through the transaction layer so they
// reach the WAL.
func ParseVertexRowsCSV(schema *Schema, typeName string, cols []string, r io.Reader) ([]map[string]storage.Value, error) {
	vt, ok := schema.VertexType(typeName)
	if !ok {
		return nil, fmt.Errorf("graph: unknown vertex type %q", typeName)
	}
	types := make([]storage.AttrType, len(cols))
	for i, c := range cols {
		if c == "" {
			continue
		}
		a, ok := vt.Attr(c)
		if !ok {
			return nil, fmt.Errorf("graph: vertex type %q has no attribute %q", typeName, c)
		}
		types[i] = a.Type
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var rows []map[string]storage.Value
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("graph: csv line %d: %w", line+1, err)
		}
		line++
		if len(rec) < len(cols) {
			return nil, fmt.Errorf("graph: csv line %d has %d fields, want >= %d", line, len(rec), len(cols))
		}
		attrs := make(map[string]storage.Value, len(cols))
		for i, c := range cols {
			if c == "" {
				continue
			}
			v, err := ParseValue(types[i], rec[i])
			if err != nil {
				return nil, fmt.Errorf("graph: csv line %d: %w", line, err)
			}
			attrs[c] = v
		}
		rows = append(rows, attrs)
	}
	return rows, nil
}

// LoadVerticesCSV reads CSV rows and inserts one vertex per row. cols
// names the attribute receiving each CSV column; an empty name skips the
// column. Returns the ids in row order. This is the store-level,
// non-durable path (inserts bypass the WAL); tigervector.DB's loaders
// are the durable equivalent.
func (g *Store) LoadVerticesCSV(typeName string, cols []string, r io.Reader) ([]uint64, error) {
	rows, err := ParseVertexRowsCSV(g.schema, typeName, cols, r)
	if err != nil {
		return nil, err
	}
	ids := make([]uint64, 0, len(rows))
	for i, attrs := range rows {
		id, err := g.AddVertex(typeName, attrs)
		if err != nil {
			return ids, fmt.Errorf("graph: csv line %d: %w", i+1, err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// ParseEdgeKeyRowsCSV parses two-column CSV rows of (fromKey, toKey)
// primary keys for edgeName, without resolving or inserting them.
func ParseEdgeKeyRowsCSV(schema *Schema, edgeName string, r io.Reader) ([][2]storage.Value, error) {
	et, ok := schema.EdgeType(edgeName)
	if !ok {
		return nil, fmt.Errorf("graph: unknown edge type %q", edgeName)
	}
	fromVT, _ := schema.VertexType(et.From)
	toVT, _ := schema.VertexType(et.To)
	fromPK, ok := fromVT.Attr(fromVT.PrimaryKey)
	if !ok {
		return nil, fmt.Errorf("graph: vertex type %q has no primary key; cannot load edges by key", et.From)
	}
	toPK, ok := toVT.Attr(toVT.PrimaryKey)
	if !ok {
		return nil, fmt.Errorf("graph: vertex type %q has no primary key; cannot load edges by key", et.To)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var rows [][2]storage.Value
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("graph: csv line %d: %w", line+1, err)
		}
		line++
		if len(rec) < 2 {
			return nil, fmt.Errorf("graph: csv line %d has %d fields, want 2", line, len(rec))
		}
		fk, err := ParseValue(fromPK.Type, rec[0])
		if err != nil {
			return nil, err
		}
		tk, err := ParseValue(toPK.Type, rec[1])
		if err != nil {
			return nil, err
		}
		rows = append(rows, [2]storage.Value{fk, tk})
	}
	return rows, nil
}

// LoadEdgesCSV reads two-column CSV rows of (fromKey, toKey) primary keys
// and inserts edges. Returns the number inserted. Store-level and
// non-durable, like LoadVerticesCSV.
func (g *Store) LoadEdgesCSV(edgeName string, r io.Reader) (int, error) {
	et, _ := g.schema.EdgeType(edgeName)
	rows, err := ParseEdgeKeyRowsCSV(g.schema, edgeName, r)
	if err != nil {
		return 0, err
	}
	n := 0
	for i, row := range rows {
		from, ok := g.VertexByKey(et.From, row[0])
		if !ok {
			return n, fmt.Errorf("graph: csv line %d: no %s vertex with key %v", i+1, et.From, row[0])
		}
		to, ok := g.VertexByKey(et.To, row[1])
		if !ok {
			return n, fmt.Errorf("graph: csv line %d: no %s vertex with key %v", i+1, et.To, row[1])
		}
		if err := g.AddEdge(edgeName, from, to); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
