// Package graph implements the property-graph substrate: schema (vertex
// and edge types, the embedding attribute type and embedding spaces of
// paper Sec. 4.1), vertex storage over fixed-size segments, adjacency
// storage, and CSV loading jobs.
package graph

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/storage"
	"repro/internal/vectormath"
)

// EmbeddingAttr is the metadata of one embedding attribute (the paper's
// `embedding` data type): dimensionality, generating model, index kind,
// element data type and similarity metric. Vector search across multiple
// attributes is allowed only when everything except the index type matches
// (paper Sec. 4.1).
type EmbeddingAttr struct {
	Name     string
	Dim      int
	Model    string
	Index    string // "HNSW"
	DataType string // "FLOAT"
	Metric   vectormath.Metric
	Space    string // embedding space name, empty if defined inline
}

// CompatibleWith reports whether a search may span both attributes:
// all metadata except the index type must be identical.
func (e EmbeddingAttr) CompatibleWith(o EmbeddingAttr) bool {
	return e.Dim == o.Dim && e.Model == o.Model && e.DataType == o.DataType && e.Metric == o.Metric
}

// EmbeddingSpace defines a shared embedding schema that multiple vertex
// types can join (paper Sec. 4.1, CREATE EMBEDDING SPACE).
type EmbeddingSpace struct {
	Name     string
	Dim      int
	Model    string
	Index    string
	DataType string
	Metric   vectormath.Metric
}

// Attr derives an EmbeddingAttr from the space.
func (s EmbeddingSpace) Attr(name string) EmbeddingAttr {
	return EmbeddingAttr{Name: name, Dim: s.Dim, Model: s.Model, Index: s.Index,
		DataType: s.DataType, Metric: s.Metric, Space: s.Name}
}

// VertexType describes one vertex type: scalar attributes, a primary key,
// and zero or more embedding attributes.
type VertexType struct {
	Name       string
	PrimaryKey string
	Attrs      []storage.AttrSchema
	Embeddings []EmbeddingAttr
}

// Attr returns the schema of a scalar attribute.
func (v *VertexType) Attr(name string) (storage.AttrSchema, bool) {
	for _, a := range v.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return storage.AttrSchema{}, false
}

// Embedding returns the embedding attribute of the given name.
func (v *VertexType) Embedding(name string) (EmbeddingAttr, bool) {
	for _, e := range v.Embeddings {
		if e.Name == name {
			return e, true
		}
	}
	return EmbeddingAttr{}, false
}

// EdgeType describes one edge type between two vertex types. Directed
// edges are traversed forward via out-adjacency and backward via
// in-adjacency; undirected edges appear in both directions.
type EdgeType struct {
	Name     string
	From, To string
	Directed bool
}

// Schema is the catalog of vertex types, edge types and embedding spaces.
type Schema struct {
	mu       sync.RWMutex
	vertices map[string]*VertexType
	edges    map[string]*EdgeType
	spaces   map[string]*EmbeddingSpace
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{
		vertices: make(map[string]*VertexType),
		edges:    make(map[string]*EdgeType),
		spaces:   make(map[string]*EmbeddingSpace),
	}
}

// AddVertexType registers a vertex type. The primary key must be one of
// the attributes.
func (s *Schema) AddVertexType(vt VertexType) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.vertices[vt.Name]; dup {
		return fmt.Errorf("graph: vertex type %q already defined", vt.Name)
	}
	if vt.PrimaryKey != "" {
		if _, ok := (&vt).Attr(vt.PrimaryKey); !ok {
			return fmt.Errorf("graph: primary key %q is not an attribute of %q", vt.PrimaryKey, vt.Name)
		}
	}
	seen := map[string]bool{}
	for _, a := range vt.Attrs {
		if seen[a.Name] {
			return fmt.Errorf("graph: duplicate attribute %q on %q", a.Name, vt.Name)
		}
		seen[a.Name] = true
	}
	cp := vt
	s.vertices[vt.Name] = &cp
	return nil
}

// AddEdgeType registers an edge type; both endpoints must exist.
func (s *Schema) AddEdgeType(et EdgeType) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.edges[et.Name]; dup {
		return fmt.Errorf("graph: edge type %q already defined", et.Name)
	}
	if _, ok := s.vertices[et.From]; !ok {
		return fmt.Errorf("graph: edge %q references unknown vertex type %q", et.Name, et.From)
	}
	if _, ok := s.vertices[et.To]; !ok {
		return fmt.Errorf("graph: edge %q references unknown vertex type %q", et.Name, et.To)
	}
	cp := et
	s.edges[et.Name] = &cp
	return nil
}

// AddEmbeddingSpace registers a named embedding space.
func (s *Schema) AddEmbeddingSpace(sp EmbeddingSpace) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.spaces[sp.Name]; dup {
		return fmt.Errorf("graph: embedding space %q already defined", sp.Name)
	}
	if sp.Dim <= 0 {
		return fmt.Errorf("graph: embedding space %q has non-positive dimension", sp.Name)
	}
	cp := sp
	s.spaces[sp.Name] = &cp
	return nil
}

// AddEmbeddingAttr attaches an embedding attribute to an existing vertex
// type (ALTER VERTEX ... ADD EMBEDDING ATTRIBUTE).
func (s *Schema) AddEmbeddingAttr(vertexType string, attr EmbeddingAttr) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	vt, ok := s.vertices[vertexType]
	if !ok {
		return fmt.Errorf("graph: unknown vertex type %q", vertexType)
	}
	if attr.Space != "" {
		sp, ok := s.spaces[attr.Space]
		if !ok {
			return fmt.Errorf("graph: unknown embedding space %q", attr.Space)
		}
		attr = sp.Attr(attr.Name)
	}
	if attr.Dim <= 0 {
		return fmt.Errorf("graph: embedding attribute %q has non-positive dimension", attr.Name)
	}
	if attr.Index == "" {
		attr.Index = "HNSW"
	}
	if attr.DataType == "" {
		attr.DataType = "FLOAT"
	}
	for _, e := range vt.Embeddings {
		if e.Name == attr.Name {
			return fmt.Errorf("graph: embedding attribute %q already on %q", attr.Name, vertexType)
		}
	}
	vt.Embeddings = append(vt.Embeddings, attr)
	return nil
}

// VertexType returns the vertex type by name.
func (s *Schema) VertexType(name string) (*VertexType, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vt, ok := s.vertices[name]
	return vt, ok
}

// EdgeType returns the edge type by name.
func (s *Schema) EdgeType(name string) (*EdgeType, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	et, ok := s.edges[name]
	return et, ok
}

// EmbeddingSpace returns the embedding space by name.
func (s *Schema) EmbeddingSpace(name string) (*EmbeddingSpace, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sp, ok := s.spaces[name]
	return sp, ok
}

// VertexTypeNames returns all vertex type names, sorted.
func (s *Schema) VertexTypeNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.vertices))
	for n := range s.vertices {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EdgeTypeNames returns all edge type names, sorted.
func (s *Schema) EdgeTypeNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.edges))
	for n := range s.edges {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EmbeddingRef names one embedding attribute of one vertex type, e.g.
// Post.content_emb.
type EmbeddingRef struct {
	VertexType string
	Attr       string
}

// String returns "Type.attr".
func (r EmbeddingRef) String() string { return r.VertexType + "." + r.Attr }

// ParseEmbeddingRef parses "Type.attr".
func ParseEmbeddingRef(s string) (EmbeddingRef, error) {
	i := strings.IndexByte(s, '.')
	if i <= 0 || i == len(s)-1 {
		return EmbeddingRef{}, fmt.Errorf("graph: bad embedding reference %q, want Type.attr", s)
	}
	return EmbeddingRef{VertexType: s[:i], Attr: s[i+1:]}, nil
}

// CheckCompatible performs the static compatibility analysis of paper
// Sec. 4.1: a multi-attribute vector search is allowed only when all
// referenced embedding attributes share dimension, model, data type and
// metric (the index type may differ). It returns the common metadata.
func (s *Schema) CheckCompatible(refs []EmbeddingRef) (EmbeddingAttr, error) {
	if len(refs) == 0 {
		return EmbeddingAttr{}, fmt.Errorf("graph: no embedding attributes given")
	}
	var base EmbeddingAttr
	for i, r := range refs {
		vt, ok := s.VertexType(r.VertexType)
		if !ok {
			return EmbeddingAttr{}, fmt.Errorf("graph: unknown vertex type %q", r.VertexType)
		}
		ea, ok := vt.Embedding(r.Attr)
		if !ok {
			return EmbeddingAttr{}, fmt.Errorf("graph: vertex type %q has no embedding attribute %q", r.VertexType, r.Attr)
		}
		if i == 0 {
			base = ea
			continue
		}
		if !base.CompatibleWith(ea) {
			return EmbeddingAttr{}, fmt.Errorf(
				"graph: semantic error: embedding attributes %s and %s are incompatible (dim/model/datatype/metric must match)",
				refs[0], r)
		}
	}
	return base, nil
}
