package tigervector

// This file implements checkpointing: an atomic snapshot of the full
// database state (graph segments + merged embedding segments) followed by
// WAL truncation, so recovery time is bounded by the post-checkpoint
// delta volume instead of the whole update history.
//
// Protocol (crash-safe at every step):
//
//  1. Take the checkpoint lock: all mutators (and therefore all WAL
//     appends) are blocked; queries keep running.
//  2. Stop the vacuum so the embedding watermark and delta files cannot
//     move mid-snapshot (restarted on exit).
//  3. Write checkpoint-<tid>.graph, checkpoint-<tid>.embed and
//     checkpoint-<tid>.index via write-temp → fsync → rename. The index
//     snapshot makes restarts fast (deserialize instead of rebuild) but
//     is never required: recovery falls back per segment to rebuilding
//     from the vector snapshot.
//  4. Write the manifest (checkpoint.json) the same way. The manifest
//     rename is the commit point: recovery only trusts files the
//     manifest names.
//  5. Truncate the WAL. A crash before this leaves pre-checkpoint
//     records in the log; recovery skips them by TID.
//  6. Delete snapshot files of older checkpoints.
//
// The catalog (DDL) log is intentionally not rotated: it is tiny,
// append-only, and replaying it is what re-creates the stores the
// snapshot loads into.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/txn"
)

// checkpointManifest is the durable pointer to the active checkpoint.
type checkpointManifest struct {
	Version    int    `json:"version"`
	TID        uint64 `json:"tid"`
	Graph      string `json:"graph"`
	Embeddings string `json:"embeddings"`
	// Indexes names the per-segment index snapshot file. Optional: a
	// manifest without it (or whose file is missing or corrupt) recovers
	// by rebuilding indexes from the embedding snapshot.
	Indexes string `json:"indexes,omitempty"`
}

// CheckpointInfo reports what one Checkpoint call did.
type CheckpointInfo struct {
	// TID is the transaction id the snapshot covers; recovery replays
	// only WAL records above it.
	TID uint64 `json:"tid"`
	// GraphBytes, EmbeddingBytes and IndexBytes are the snapshot file
	// sizes.
	GraphBytes     int64 `json:"graph_bytes"`
	EmbeddingBytes int64 `json:"embedding_bytes"`
	IndexBytes     int64 `json:"index_bytes"`
	// WALTruncatedBytes is the log volume the checkpoint retired.
	WALTruncatedBytes int64 `json:"wal_truncated_bytes"`
	// DurationSeconds is the wall time the checkpoint held the write lock.
	DurationSeconds float64 `json:"duration_seconds"`
}

// ErrNotDurable is returned by Checkpoint on a DB opened without
// Config.Durability.
var ErrNotDurable = errors.New("tigervector: checkpoint requires Config.Durability")

func (db *DB) manifestPath() string { return filepath.Join(db.cfg.DataDir, "checkpoint.json") }

// syncDir fsyncs a directory, persisting renames inside it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	return errors.Join(err, d.Close())
}

// writeFileAtomic writes via a temp file, fsyncs, and renames into place.
// It is the blessed implementation of the durable-write pattern:
// tgvlint:atomicwrite-helper
func writeFileAtomic(path string, write func(f *os.File) error) (int64, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	if err := write(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return 0, err
	}
	size := int64(0)
	if st, err := f.Stat(); err == nil {
		size = st.Size()
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return size, nil
}

// Checkpoint atomically snapshots the whole database state — schema-owned
// stores are re-created from the catalog log, so the snapshot covers
// graph data and the net vector state at the checkpoint TID — then
// truncates the WAL. Writes block for the duration; reads do not. It also
// makes bulk-loaded embeddings durable, which the WAL alone does not
// cover.
func (db *DB) Checkpoint() (*CheckpointInfo, error) {
	if !db.cfg.Durability {
		return nil, ErrNotDurable
	}
	info, err := db.checkpoint()
	db.checkpoints.Add(1)
	if err != nil {
		db.checkpointErr.Add(1)
		return nil, err
	}
	db.lastCpTID.Store(info.TID)
	return info, nil
}

func (db *DB) checkpoint() (*CheckpointInfo, error) {
	db.cpMu.Lock()
	defer db.cpMu.Unlock()
	if db.closed {
		return nil, errors.New("tigervector: checkpoint on closed DB")
	}
	if err := db.mgr.Poisoned(); err != nil {
		// A partial apply diverged memory from the log; snapshotting that
		// state (and truncating the WAL under it) would make the
		// divergence durable. Recovery by reopen comes first.
		return nil, fmt.Errorf("tigervector: checkpoint refused: %w", err)
	}
	start := time.Now()

	// Quiesce the vacuum: its final flush+merge folds as much delta state
	// as possible into the segments, and nothing moves the watermark or
	// retires delta files while the snapshot reads them.
	db.vac.Stop()
	if !db.cfg.DisableVacuum {
		defer db.vac.Start()
	}

	tid := db.mgr.Visible()
	info := &CheckpointInfo{TID: uint64(tid)}
	graphName := fmt.Sprintf("checkpoint-%d.graph", tid)
	embedName := fmt.Sprintf("checkpoint-%d.embed", tid)
	indexName := fmt.Sprintf("checkpoint-%d.index", tid)

	var err error
	info.GraphBytes, err = writeFileAtomic(filepath.Join(db.cfg.DataDir, graphName), func(f *os.File) error {
		return db.graph.WriteSnapshot(f)
	})
	if err != nil {
		return nil, fmt.Errorf("tigervector: checkpoint graph: %w", err)
	}
	info.EmbeddingBytes, err = writeFileAtomic(filepath.Join(db.cfg.DataDir, embedName), func(f *os.File) error {
		return db.svc.WriteSnapshot(f, tid)
	})
	if err != nil {
		return nil, fmt.Errorf("tigervector: checkpoint embeddings: %w", err)
	}
	info.IndexBytes, err = writeFileAtomic(filepath.Join(db.cfg.DataDir, indexName), func(f *os.File) error {
		return db.svc.WriteIndexSnapshot(f, tid)
	})
	if err != nil {
		return nil, fmt.Errorf("tigervector: checkpoint indexes: %w", err)
	}

	// The manifest is the commit point, so everything it names must be
	// durable before it lands: the snapshot files' directory entries
	// (same-directory renames are not ordered on all filesystems) and
	// the catalog DDL that re-creates the stores the snapshot loads
	// into (in NoFsync mode it may still sit in the page cache).
	if err := syncDir(db.cfg.DataDir); err != nil {
		return nil, fmt.Errorf("tigervector: checkpoint dir sync: %w", err)
	}
	if err := db.syncCatalog(); err != nil {
		return nil, fmt.Errorf("tigervector: checkpoint catalog sync: %w", err)
	}
	manifest, err := json.Marshal(checkpointManifest{
		Version: 1, TID: uint64(tid), Graph: graphName, Embeddings: embedName,
		Indexes: indexName,
	})
	if err != nil {
		return nil, err
	}
	if _, err := writeFileAtomic(db.manifestPath(), func(f *os.File) error {
		_, err := f.Write(manifest)
		return err
	}); err != nil {
		return nil, fmt.Errorf("tigervector: checkpoint manifest: %w", err)
	}
	// Best effort for the manifest rename itself: if this is lost to a
	// crash, the previous checkpoint (whose files still exist) is used.
	_ = syncDir(db.cfg.DataDir)

	// The snapshot is committed; retire the log it covers. A crash before
	// (or during) the truncate is safe — recovery skips WAL records with
	// TID <= the manifest TID.
	if db.walFile != nil {
		if st, err := db.walFile.Stat(); err == nil {
			info.WALTruncatedBytes = st.Size()
		}
		if err := db.walFile.Truncate(0); err != nil {
			return nil, fmt.Errorf("tigervector: truncate wal: %w", err)
		}
		if err := db.walFile.Sync(); err != nil {
			return nil, err
		}
	}

	// Old checkpoint files are garbage now, as is any *.tmp left behind
	// by a checkpoint that crashed mid-write (renames are done, so no
	// live file has the .tmp suffix).
	for _, pat := range []string{"checkpoint-*.graph", "checkpoint-*.embed", "checkpoint-*.index", "checkpoint*.tmp"} {
		matches, _ := filepath.Glob(filepath.Join(db.cfg.DataDir, pat))
		for _, m := range matches {
			if base := filepath.Base(m); base != graphName && base != embedName && base != indexName {
				os.Remove(m)
			}
		}
	}
	info.DurationSeconds = time.Since(start).Seconds()
	return info, nil
}

// loadCheckpoint restores the newest checkpoint snapshot, if one exists,
// and returns its TID (0 when starting from log replay alone). The
// catalog must already be replayed.
//
// Index restore takes the fast path when the manifest names an index
// snapshot: segment indexes deserialize in parallel on the worker pool,
// with per-segment fallback to rebuilding from the restored vectors, so
// a missing or damaged index snapshot degrades restart time, never
// recovery semantics.
func (db *DB) loadCheckpoint() (txn.TID, error) {
	data, err := os.ReadFile(db.manifestPath())
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("tigervector: read checkpoint manifest: %w", err)
	}
	var m checkpointManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return 0, fmt.Errorf("tigervector: checkpoint manifest corrupt: %w", err)
	}
	if m.Version != 1 {
		return 0, fmt.Errorf("tigervector: checkpoint manifest version %d unsupported", m.Version)
	}
	gf, err := os.Open(filepath.Join(db.cfg.DataDir, m.Graph))
	if err != nil {
		return 0, fmt.Errorf("tigervector: checkpoint graph snapshot: %w", err)
	}
	err = db.graph.ReadSnapshot(gf)
	_ = gf.Close()
	if err != nil {
		return 0, fmt.Errorf("tigervector: restore graph snapshot: %w", err)
	}
	ef, err := os.Open(filepath.Join(db.cfg.DataDir, m.Embeddings))
	if err != nil {
		return 0, fmt.Errorf("tigervector: checkpoint embedding snapshot: %w", err)
	}
	_, err = db.svc.LoadSnapshotVectors(ef)
	_ = ef.Close()
	if err != nil {
		return 0, fmt.Errorf("tigervector: restore embedding snapshot: %w", err)
	}

	start := time.Now()
	threads := runtime.GOMAXPROCS(0)
	tid := txn.TID(m.TID)
	var loaded, rebuilt int
	usedSnapshot := false
	if m.Indexes != "" {
		if xf, xerr := os.Open(filepath.Join(db.cfg.DataDir, m.Indexes)); xerr == nil {
			loaded, rebuilt, err = db.svc.LoadIndexSnapshots(xf, db.pool, threads, tid)
			_ = xf.Close()
			if err != nil {
				return 0, fmt.Errorf("tigervector: restore index snapshot: %w", err)
			}
			usedSnapshot = true
		}
	}
	if !usedSnapshot {
		rebuilt, err = db.svc.BuildAllIndexes(threads, tid)
		if err != nil {
			return 0, fmt.Errorf("tigervector: rebuild indexes: %w", err)
		}
	}
	db.indexSnapSegs.Store(int64(loaded))
	db.indexRebuiltSegs.Store(int64(rebuilt))
	db.openIndexLoadNanos.Store(time.Since(start).Nanoseconds())
	return tid, nil
}

// checkpointLoop runs periodic checkpoints until Close.
func (db *DB) checkpointLoop() {
	defer close(db.cpDone)
	t := time.NewTicker(db.cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-db.cpStop:
			return
		case <-t.C:
			// Errors are counted (see Stats) rather than fatal: a failed
			// periodic checkpoint leaves the previous one active.
			db.Checkpoint()
		}
	}
}
