package tigervector

import "context"

// This file keeps the legacy batch entry point alive as a thin wrapper
// over SearchBatch. The concurrent serving story (paper Sec. 4.3
// extended from intra-query segment parallelism to inter-query
// parallelism) now lives behind the unified Request/Result surface in
// request.go: every query runs over the DB's bounded worker pool at its
// own MVCC snapshot TID, registered with the per-store ActiveTracker so
// the vacuum never retires state a running query still needs.

// BatchQuery describes one search inside a BatchVectorSearch call.
//
// Deprecated: use Request, which adds get requests, snapshot pinning
// (AtTID) and per-request deadlines.
type BatchQuery struct {
	// Attrs are the searched embedding attributes as "Type.attr" strings.
	// Top-k queries may span multiple compatible attributes; a range query
	// uses exactly one.
	Attrs []string
	// Query is the query vector.
	Query []float32
	// K is the top-k result count. Ignored when Range is set.
	K int
	// Range switches the query to a range search over Attrs[0]: every
	// vertex within Threshold of Query is returned.
	Range bool
	// Threshold is the range-search distance bound.
	Threshold float32
	// Opts carries the per-query beam width and pre-filter, as in
	// VectorSearch. Nil uses the DB defaults.
	Opts *SearchOptions
}

// BatchResult is the outcome of one BatchQuery. Results are positional:
// BatchVectorSearch()[i] answers queries[i], regardless of the order in
// which workers finished them.
//
// Deprecated: use Result, returned by Search and SearchBatch.
type BatchResult struct {
	// Hits are the matches, ascending by distance (ties broken by vertex
	// type then id, so repeated runs over unchanged data are identical).
	Hits []SearchHit
	// SnapshotTID is the MVCC snapshot the query executed at: the query
	// saw exactly the transactions with TID <= SnapshotTID.
	SnapshotTID uint64
	// Err is the per-query failure, if any. One bad query (unknown
	// attribute, wrong dimension, K <= 0) does not fail its batch.
	Err error
}

// BatchVectorSearch executes many searches concurrently over the DB's
// bounded worker pool (Config.Workers wide) and returns one result per
// query, in query order.
//
// Deprecated: use SearchBatch — it accepts a context.Context
// (cancellation, deadlines) and composable Requests. This wrapper runs
// the same path with context.Background().
func (db *DB) BatchVectorSearch(queries []BatchQuery) []BatchResult {
	reqs := make([]Request, len(queries))
	for i, q := range queries {
		kind := TopK
		if q.Range {
			kind = Range
		}
		reqs[i] = q.Opts.request(kind, q.Attrs, q.Query, q.K, q.Threshold)
	}
	results := db.SearchBatch(context.Background(), reqs)
	out := make([]BatchResult, len(results))
	for i, r := range results {
		out[i] = BatchResult{Hits: r.Hits, SnapshotTID: r.SnapshotTID, Err: r.Err}
	}
	return out
}
