package tigervector

import (
	"fmt"

	"repro/internal/graph"
)

// This file implements the concurrent serving entry point: many top-k /
// range queries executed in parallel over the DB's bounded worker pool.
// Each query runs at its own MVCC snapshot TID captured when a worker
// picks it up, and each snapshot is registered with the per-store
// ActiveTracker (via core.EmbeddingStore.BeginSearch inside the engine),
// so the vacuum never retires delta state or index versions a running
// query still needs — the paper's concurrency story (Sec. 4.3) extended
// from intra-query segment parallelism to inter-query parallelism.

// BatchQuery describes one search inside a BatchVectorSearch call.
type BatchQuery struct {
	// Attrs are the searched embedding attributes as "Type.attr" strings.
	// Top-k queries may span multiple compatible attributes; a range query
	// uses exactly one.
	Attrs []string
	// Query is the query vector.
	Query []float32
	// K is the top-k result count. Ignored when Range is set.
	K int
	// Range switches the query to a range search over Attrs[0]: every
	// vertex within Threshold of Query is returned.
	Range bool
	// Threshold is the range-search distance bound.
	Threshold float32
	// Opts carries the per-query beam width and pre-filter, as in
	// VectorSearch. Nil uses the DB defaults.
	Opts *SearchOptions
}

// BatchResult is the outcome of one BatchQuery. Results are positional:
// BatchVectorSearch()[i] answers queries[i], regardless of the order in
// which workers finished them.
type BatchResult struct {
	// Hits are the matches, ascending by distance (ties broken by vertex
	// type then id, so repeated runs over unchanged data are identical).
	Hits []SearchHit
	// SnapshotTID is the MVCC snapshot the query executed at: the query
	// saw exactly the transactions with TID <= SnapshotTID.
	SnapshotTID uint64
	// Err is the per-query failure, if any. One bad query (unknown
	// attribute, wrong dimension, K <= 0) does not fail its batch.
	Err error
}

// BatchVectorSearch executes many searches concurrently over the DB's
// bounded worker pool (Config.Workers wide) and returns one result per
// query, in query order. Each query is snapshotted independently when it
// starts executing, so a batch issued concurrently with writers is a set
// of consistent point-in-time reads, not one frozen view; vacuum safety
// is preserved per query via the store ActiveTrackers.
//
// The call blocks until every query finished. It is safe to call from
// many goroutines at once — the pool bounds total query concurrency.
func (db *DB) BatchVectorSearch(queries []BatchQuery) []BatchResult {
	results := make([]BatchResult, len(queries))
	done := make([]bool, len(queries))
	err := db.pool.Do(len(queries), func(i int) {
		results[i] = db.runBatchQuery(queries[i])
		done[i] = true
	})
	if err != nil {
		// Pool closed mid-batch (DB shutting down): mark unrun queries.
		for i := range results {
			if !done[i] {
				results[i].Err = fmt.Errorf("tigervector: batch query %d: %w", i, err)
			}
		}
	}
	return results
}

// runBatchQuery executes one query of a batch at a fresh snapshot. A
// panic anywhere in the search path is converted into the query's Err:
// one poisoned query must degrade to one failed slot, not a dead
// serving process or a silently empty result.
func (db *DB) runBatchQuery(q BatchQuery) (res BatchResult) {
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("tigervector: batch query panicked: %v", r)
		}
	}()
	tid := db.mgr.Visible() // per-query snapshot
	res = BatchResult{SnapshotTID: uint64(tid)}
	if len(q.Attrs) == 0 {
		res.Err = fmt.Errorf("tigervector: batch query has no embedding attributes")
		return res
	}
	if q.Range {
		if len(q.Attrs) != 1 {
			res.Err = fmt.Errorf("tigervector: range query wants exactly 1 attribute, got %d", len(q.Attrs))
			return res
		}
		ref, err := graph.ParseEmbeddingRef(q.Attrs[0])
		if err != nil {
			res.Err = err
			return res
		}
		hits, err := db.engine.RangeAction(ref, q.Query, q.Threshold, db.engineOpts(0, q.Opts, tid))
		if err != nil {
			res.Err = err
			return res
		}
		res.Hits = typedToHits(hits)
		return res
	}
	refs, err := parseRefs(q.Attrs)
	if err != nil {
		res.Err = err
		return res
	}
	if err := db.checkQueryDim(refs, len(q.Query)); err != nil {
		res.Err = err
		return res
	}
	hits, err := db.engine.EmbeddingAction(refs, q.Query, db.engineOpts(q.K, q.Opts, tid))
	if err != nil {
		res.Err = err
		return res
	}
	res.Hits = typedToHits(hits)
	return res
}

// checkQueryDim validates the query vector dimension against the schema
// before the search fans out, so dimension mistakes fail fast with a
// clear error instead of garbage distances.
func (db *DB) checkQueryDim(refs []graph.EmbeddingRef, dim int) error {
	for _, ref := range refs {
		vt, ok := db.graph.Schema().VertexType(ref.VertexType)
		if !ok {
			return fmt.Errorf("tigervector: unknown vertex type %q", ref.VertexType)
		}
		ea, ok := vt.Embedding(ref.Attr)
		if !ok {
			return fmt.Errorf("tigervector: %s has no embedding attribute %q", ref.VertexType, ref.Attr)
		}
		if dim != ea.Dim {
			return fmt.Errorf("tigervector: %s expects query dimension %d, got %d", ref, ea.Dim, dim)
		}
	}
	return nil
}
