package tigervector

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/gsql"
	"repro/internal/txn"
	"repro/internal/vectormath"
)

// SearchHit is one vector search result.
type SearchHit struct {
	VertexType string
	ID         uint64
	Distance   float32
}

// VertexSet is the public view of a vertex-set query result.
type VertexSet struct {
	Type string
	IDs  []uint64
}

// String renders the set compactly for printing.
func (s *VertexSet) String() string {
	return fmt.Sprintf("%s%v", s.Type, s.IDs)
}

// PairRow is one vector-similarity-join result row.
type PairRow struct {
	SrcType  string
	Src      uint64
	DstType  string
	Dst      uint64
	Distance float32
}

// QueryResult is the outcome of running a GSQL query.
type QueryResult struct {
	// Outputs are the PRINT results in order. Values are plain Go types:
	// int64, float64, string, bool, []float32, *VertexSet, []*VertexSet,
	// []PairRow or map[uint64]float64.
	Outputs []Output
	// Plans are the executed action plans (paper-style, one per block).
	Plans []string
	// Stats carries execution measurements.
	Stats QueryStats
}

// Output is one PRINT result.
type Output struct {
	Name  string
	Value any
}

// QueryStats mirrors the measurements of the paper's hybrid evaluation.
type QueryStats struct {
	EndToEnd         float64 // seconds
	VectorSearchTime float64 // seconds
	// Candidates is the candidate-set size of the query's last vector
	// search: the pre-filter set size when one applied, otherwise the
	// live candidate universe of the searched type(s).
	Candidates int
	// Selectivity is the last filtered search's measured qualified
	// fraction (0 when no filter applied).
	Selectivity float64
	// Plan is the planner's compact rendering of the last filtered
	// search ("" when no filter applied).
	Plan string
}

// Run executes a defined GSQL query. Runs hold the checkpoint lock
// shared because built-ins like tg_louvain write derived vertex
// attributes (cid) into the graph; those writes are memory-only (not
// WAL-logged — recompute after a restart, or checkpoint to persist
// them), but they must not mutate segments while a checkpoint snapshots
// them.
func (db *DB) Run(name string, args map[string]any) (*QueryResult, error) {
	db.cpMu.RLock()
	defer db.cpMu.RUnlock()
	res, err := db.interp.Run(name, args)
	if err != nil {
		return nil, err
	}
	out := &QueryResult{
		Plans: res.Plans,
		Stats: QueryStats{
			EndToEnd:         res.Stats.EndToEnd.Seconds(),
			VectorSearchTime: res.Stats.VectorSearchTime.Seconds(),
			Candidates:       res.Stats.Candidates,
			Selectivity:      res.Stats.Selectivity,
			Plan:             res.Stats.Plan,
		},
	}
	for _, o := range res.Outputs {
		out.Outputs = append(out.Outputs, Output{Name: o.Name, Value: publicValue(o.Value)})
	}
	return out, nil
}

func publicValue(v any) any {
	switch x := v.(type) {
	case *engine.VertexSet:
		return &VertexSet{Type: x.Type, IDs: x.IDs()}
	case *gsql.MultiSet:
		out := make([]*VertexSet, 0, len(x.Sets))
		for _, s := range x.Sets {
			out = append(out, &VertexSet{Type: s.Type, IDs: s.IDs()})
		}
		return out
	case *gsql.PairTable:
		rows := make([]PairRow, len(x.Rows))
		for i, r := range x.Rows {
			rows[i] = PairRow{SrcType: r.SrcType, Src: r.Src, DstType: r.DstType, Dst: r.Dst, Distance: r.Distance}
		}
		return rows
	case map[uint64]struct{}:
		ids := make([]uint64, 0, len(x))
		for id := range x {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return ids
	default:
		return v
	}
}

// SearchOptions tunes direct vector searches.
type SearchOptions struct {
	// Ef is the index beam width; 0 uses the DB default.
	Ef int
	// Filter restricts candidates to this set of vertex ids of the
	// searched types. Nil searches everything live.
	Filter *VertexSet
}

// request converts the legacy options into the unified Request shape.
func (opts *SearchOptions) request(kind RequestKind, attrs []string, query []float32, k int, threshold float32) Request {
	req := Request{Kind: kind, Attrs: attrs, Query: query, K: k, Threshold: threshold}
	if opts != nil {
		req.Ef = opts.Ef
		req.Filter = opts.Filter
	}
	return req
}

// typedToHits converts engine results to the public hit type.
func typedToHits(res []engine.TypedResult) []SearchHit {
	out := make([]SearchHit, len(res))
	for i, r := range res {
		out[i] = SearchHit{VertexType: r.Type, ID: r.ID, Distance: r.Distance}
	}
	return out
}

// parseRefs parses "Type.attr" strings.
func parseRefs(attrs []string) ([]graph.EmbeddingRef, error) {
	refs := make([]graph.EmbeddingRef, 0, len(attrs))
	for _, a := range attrs {
		r, err := graph.ParseEmbeddingRef(a)
		if err != nil {
			return nil, err
		}
		refs = append(refs, r)
	}
	return refs, nil
}

// VectorSearch runs a top-k search over one or more embedding attributes
// given as "Type.attr" strings. Attributes spanning multiple vertex types
// must pass the embedding compatibility check (same dimension, model,
// data type and metric).
//
// Deprecated: use Search with a TopK Request — it accepts a
// context.Context (cancellation, deadlines) and returns the snapshot
// TID. This wrapper runs the same path with context.Background().
func (db *DB) VectorSearch(attrs []string, query []float32, k int, opts *SearchOptions) ([]SearchHit, error) {
	res, err := db.Search(context.Background(), opts.request(TopK, attrs, query, k, 0))
	if err != nil {
		return nil, err
	}
	return res.Hits, nil
}

// RangeSearch returns every vertex whose embedding lies within the
// distance threshold of the query.
//
// Deprecated: use Search with a Range Request — it accepts a
// context.Context (cancellation, deadlines) and returns the snapshot
// TID. This wrapper runs the same path with context.Background().
func (db *DB) RangeSearch(attr string, query []float32, threshold float32, opts *SearchOptions) ([]SearchHit, error) {
	res, err := db.Search(context.Background(), opts.request(Range, []string{attr}, query, 0, threshold))
	if err != nil {
		return nil, err
	}
	return res.Hits, nil
}

// UpsertEmbedding transactionally writes a vertex's embedding attribute.
// The update becomes visible immediately (served from the delta store)
// and is merged into the index by the vacuum.
func (db *DB) UpsertEmbedding(vertexType, attr string, id uint64, vec []float32) error {
	db.admitWrite()
	db.cpMu.RLock()
	defer db.cpMu.RUnlock()
	return db.upsertEmbedding(vertexType, attr, id, vec)
}

// upsertEmbedding is UpsertEmbedding without the checkpoint lock, for
// loaders that already hold it.
func (db *DB) upsertEmbedding(vertexType, attr string, id uint64, vec []float32) error {
	if err := db.checkEmbedding(vertexType, attr, len(vec)); err != nil {
		return err
	}
	if err := validateVector("upsert vector", vec); err != nil {
		return err
	}
	tx := db.mgr.Begin()
	tx.StageVector(txn.StagedVector{
		AttrKey: core.AttrKey(vertexType, attr), Action: txn.Upsert, ID: id,
		Vec: vectormath.Clone(vec)})
	_, err := tx.Commit()
	return err
}

// DeleteEmbedding transactionally removes a vertex's embedding.
func (db *DB) DeleteEmbedding(vertexType, attr string, id uint64) error {
	db.admitWrite()
	db.cpMu.RLock()
	defer db.cpMu.RUnlock()
	if err := db.checkEmbedding(vertexType, attr, -1); err != nil {
		return err
	}
	tx := db.mgr.Begin()
	tx.StageVector(txn.StagedVector{
		AttrKey: core.AttrKey(vertexType, attr), Action: txn.Delete, ID: id})
	_, err := tx.Commit()
	return err
}

// GetEmbedding reads the currently visible embedding of a vertex.
//
// Deprecated: use Search with a Get Request — it accepts a
// context.Context, can pin a snapshot via AtTID (rejecting retired
// pins), and returns the snapshot TID. This wrapper reads the current
// visible state directly.
func (db *DB) GetEmbedding(vertexType, attr string, id uint64) ([]float32, bool) {
	v, ok := db.engine.GetVector(graph.EmbeddingRef{VertexType: vertexType, Attr: attr}, id, 0)
	return v, ok
}

func (db *DB) checkEmbedding(vertexType, attr string, dim int) error {
	vt, ok := db.graph.Schema().VertexType(vertexType)
	if !ok {
		return fmt.Errorf("tigervector: unknown vertex type %q", vertexType)
	}
	ea, ok := vt.Embedding(attr)
	if !ok {
		return fmt.Errorf("tigervector: %s has no embedding attribute %q", vertexType, attr)
	}
	if dim >= 0 && dim != ea.Dim {
		return fmt.Errorf("tigervector: %s.%s expects dimension %d, got %d", vertexType, attr, ea.Dim, dim)
	}
	return nil
}
