package tigervector

import "sort"

// This file is the observability surface of the serving layer: one
// Stats() snapshot covering MVCC progress, per-attribute store state,
// vacuum activity and worker-pool load, serialized as-is by the
// tgvserve /stats endpoint.

// PoolStats reports worker-pool activity.
type PoolStats struct {
	// Workers is the fixed pool width (Config.Workers).
	Workers int `json:"workers"`
	// Submitted counts queries accepted since Open.
	Submitted int64 `json:"submitted"`
	// Completed counts queries finished.
	Completed int64 `json:"completed"`
	// InFlight is Submitted - Completed: queued plus executing queries.
	InFlight int64 `json:"in_flight"`
}

// StoreStats describes one embedding store (one vector attribute).
type StoreStats struct {
	// Attr is the "VertexType.attr" key.
	Attr string `json:"attr"`
	// Segments is the embedding segment count.
	Segments int `json:"segments"`
	// PendingDeltas counts committed vector updates not yet flushed to a
	// delta file.
	PendingDeltas int `json:"pending_deltas"`
	// DeltaFiles counts flushed delta files not yet merged into indexes.
	DeltaFiles int `json:"delta_files"`
	// Watermark is the TID up to which the indexes are complete.
	Watermark uint64 `json:"watermark"`
	// ActiveQueries counts snapshot registrations currently held against
	// this store. It must return to zero once all requests — including
	// cancelled ones — have finished; a stuck non-zero value pins the
	// vacuum.
	ActiveQueries int `json:"active_queries"`
	// VectorBytes is the resident size of the store's float32 segment
	// rows; QuantizedBytes is the additional size of the SQ8 codes (zero
	// with quantization off). Their ratio shows the memory cut a
	// codes-only deployment would get.
	VectorBytes    uint64 `json:"vector_bytes"`
	QuantizedBytes uint64 `json:"quantized_bytes"`
	// RescoreCandidates counts candidates re-scored with exact float32
	// distances after a quantized scan since Open. Zero with quantization
	// on means no brute scan ran quantized (e.g. every segment went
	// through an index).
	RescoreCandidates uint64 `json:"rescore_candidates"`
	// PendingDeltaBytes is the resident size of the unflushed delta
	// store (vectors plus per-delta overhead) — the volume the adaptive
	// flush trigger measures.
	PendingDeltaBytes int64 `json:"pending_delta_bytes"`
	// DeltaFileRows counts vector updates sitting in flushed-but-unmerged
	// delta files. PendingDeltas + DeltaFileRows is the write backlog the
	// backpressure governor paces against.
	DeltaFileRows int `json:"delta_file_rows"`
}

// FilterPlanStats accumulates filtered-search planner activity since
// Open: how many filtered searches ran and how many segment scans each
// strategy executed. Per-request plans ride on Result.Plan; these are
// the fleet-level aggregates.
type FilterPlanStats struct {
	// FilteredSearches counts searches that carried an explicit filter
	// (and therefore ran through the planner).
	FilteredSearches int64 `json:"filtered_searches"`
	// BruteSegments counts segments answered by the exact
	// candidate-only scan (index skipped).
	BruteSegments int64 `json:"brute_segments"`
	// BitmapSegments counts segments answered by the index with dense
	// bitmap admission and inflated ef.
	BitmapSegments int64 `json:"bitmap_segments"`
	// PostSegments counts segments answered by an unfiltered index
	// search with post-filtering.
	PostSegments int64 `json:"post_segments"`
	// SkippedSegments counts segments with zero qualified candidates.
	SkippedSegments int64 `json:"skipped_segments"`
}

// VacuumStats counts background vacuum activity since Open.
type VacuumStats struct {
	// FlushRuns counts delta-merge passes (memory -> delta file).
	FlushRuns int64 `json:"flush_runs"`
	// FlushedDeltas counts vector updates persisted by those passes.
	FlushedDeltas int64 `json:"flushed_deltas"`
	// MergeRuns counts index-merge passes (delta file -> index).
	MergeRuns int64 `json:"merge_runs"`
	// MergedDeltas counts vector updates merged into indexes.
	MergedDeltas int64 `json:"merged_deltas"`
	// Rebuilds counts whole-segment index rebuilds.
	Rebuilds int64 `json:"rebuilds"`
	// Errors counts failed vacuum passes.
	Errors int64 `json:"errors"`
	// Trigger-reason counters: why background passes fired. Floor counts
	// are interval ticks (the idle cadence); the others are adaptive
	// triggers — flushes forced by delta volume, merges forced by the
	// delta-file backlog or tombstone ratio, and full passes kicked by
	// write backpressure. Manual Vacuum() passes are not attributed.
	FlushFloorRuns     int64 `json:"flush_floor_runs"`
	FlushVolumeRuns    int64 `json:"flush_volume_runs"`
	MergeFloorRuns     int64 `json:"merge_floor_runs"`
	MergeFileRuns      int64 `json:"merge_file_runs"`
	MergeTombstoneRuns int64 `json:"merge_tombstone_runs"`
	KickedRuns         int64 `json:"kicked_runs"`
}

// GroupCommitStats reports WAL group-commit batching efficiency. With
// group commit off (or no durability) all fields are zero.
type GroupCommitStats struct {
	// Enabled reports whether fsync coalescing is configured on.
	Enabled bool `json:"enabled"`
	// Commits counts durable commits acknowledged through the group
	// path; Fsyncs counts the physical fsyncs that covered them. Their
	// ratio (Fsyncs/Commits) is the batching efficiency — it approaches
	// 1/batch-size under concurrent load.
	Commits int64 `json:"commits"`
	Fsyncs  int64 `json:"fsyncs"`
	// MaxBatch is the largest number of commits one fsync covered.
	MaxBatch int64 `json:"max_batch"`
}

// BackpressureStats reports write-admission pacing activity. All zero
// when backpressure is off (disabled, or no background vacuum).
type BackpressureStats struct {
	// Enabled reports whether the governor is active.
	Enabled bool `json:"enabled"`
	// SoftLimit and HardLimit are the configured backlog thresholds.
	SoftLimit int `json:"soft_limit"`
	HardLimit int `json:"hard_limit"`
	// Backlog is the current unmerged write backlog (pending deltas plus
	// delta-file rows, summed over stores).
	Backlog int `json:"backlog"`
	// Throttled counts writes that paid any pacing delay; HardStalls
	// counts the subset that hit the hard ceiling; ThrottleNanos is the
	// total time writes spent paced.
	Throttled     int64 `json:"throttled"`
	HardStalls    int64 `json:"hard_stalls"`
	ThrottleNanos int64 `json:"throttle_nanos"`
}

// DBStats is a point-in-time snapshot of a DB's serving state.
type DBStats struct {
	// VisibleTID is the highest committed transaction id.
	VisibleTID uint64 `json:"visible_tid"`
	// LastCommittedTID mirrors VisibleTID under the name the replication
	// protocol uses: the position replicas compare their applied_tid
	// against for lag monitoring.
	LastCommittedTID uint64 `json:"last_committed_tid"`
	// Checkpoints counts Checkpoint() calls (manual and periodic) since
	// Open; CheckpointErrors counts the ones that failed.
	Checkpoints      int64 `json:"checkpoints"`
	CheckpointErrors int64 `json:"checkpoint_errors"`
	// LastCheckpointTID is the TID of the newest checkpoint covering the
	// data dir — written by this process or recovered from the manifest
	// at Open (0 when none exists). It bounds how much WAL a restart
	// replays, and is the horizon below which a replica must bootstrap
	// from the snapshot instead of pulling the log.
	LastCheckpointTID uint64 `json:"last_checkpoint_tid"`
	// RecoveryTornBytes is the WAL volume truncated while opening: the
	// torn tail record a crash mid-append leaves behind (larger values
	// suggest mid-log corruption cut away acknowledged commits).
	RecoveryTornBytes int64 `json:"recovery_torn_bytes"`
	// IndexSnapshotSegments counts segment indexes Open deserialized
	// from the checkpoint's index snapshot (the restart fast path);
	// IndexRebuiltSegments counts the ones rebuilt from vectors because
	// no usable snapshot frame existed. After a clean checkpoint a
	// restart should report zero rebuilds.
	IndexSnapshotSegments int64 `json:"index_snapshot_segments"`
	IndexRebuiltSegments  int64 `json:"index_rebuilt_segments"`
	// OpenIndexLoadNanos is the wall time Open spent restoring segment
	// indexes (snapshot loads plus fallback rebuilds).
	OpenIndexLoadNanos int64 `json:"open_index_load_nanos"`
	// FilterPlans aggregates filtered-search planner activity.
	FilterPlans FilterPlanStats `json:"filter_plans"`
	// Stores lists per-attribute store state, sorted by attribute key.
	Stores []StoreStats `json:"stores"`
	// Vacuum aggregates background maintenance counters.
	Vacuum VacuumStats `json:"vacuum"`
	// GroupCommit reports WAL fsync-coalescing efficiency.
	GroupCommit GroupCommitStats `json:"group_commit"`
	// Backpressure reports write-admission pacing.
	Backpressure BackpressureStats `json:"backpressure"`
	// Pool reports query worker-pool load.
	Pool PoolStats `json:"pool"`
	// Queries lists the defined GSQL query names.
	Queries []string `json:"queries"`
}

// Stats returns a consistent-enough snapshot for monitoring; the counters
// are read without stopping writers, so they may be mutually slightly
// stale.
func (db *DB) Stats() DBStats {
	ps := db.pool.Stats()
	st := DBStats{
		VisibleTID:            uint64(db.mgr.Visible()),
		LastCommittedTID:      uint64(db.mgr.Visible()),
		Checkpoints:           db.checkpoints.Load(),
		CheckpointErrors:      db.checkpointErr.Load(),
		LastCheckpointTID:     db.CheckpointTID(),
		RecoveryTornBytes:     db.tornBytes.Load(),
		IndexSnapshotSegments: db.indexSnapSegs.Load(),
		IndexRebuiltSegments:  db.indexRebuiltSegs.Load(),
		OpenIndexLoadNanos:    db.openIndexLoadNanos.Load(),
		Pool: PoolStats{
			Workers:   ps.Workers,
			Submitted: ps.Submitted,
			Completed: ps.Completed,
			InFlight:  ps.InFlight,
		},
		Queries: db.Queries(),
	}
	pc := db.engine.PlanCounters()
	st.FilterPlans = FilterPlanStats{
		FilteredSearches: pc.FilteredSearches,
		BruteSegments:    pc.BruteSegments,
		BitmapSegments:   pc.BitmapSegments,
		PostSegments:     pc.PostSegments,
		SkippedSegments:  pc.SkippedSegments,
	}
	backlog := 0
	for _, store := range db.svc.Stores() {
		vecBytes, quantBytes, rescored := store.MemStats()
		backlog += store.Backlog()
		st.Stores = append(st.Stores, StoreStats{
			Attr:              store.Key,
			Segments:          store.NumSegments(),
			PendingDeltas:     store.PendingDeltas(),
			DeltaFiles:        len(store.DeltaFiles()),
			Watermark:         uint64(store.Watermark()),
			ActiveQueries:     store.ActiveQueries(),
			VectorBytes:       vecBytes,
			QuantizedBytes:    quantBytes,
			RescoreCandidates: rescored,
			PendingDeltaBytes: store.PendingDeltaBytes(),
			DeltaFileRows:     store.DeltaFileRows(),
		})
	}
	sort.Slice(st.Stores, func(i, j int) bool { return st.Stores[i].Attr < st.Stores[j].Attr })
	vs := db.vac.Stats()
	st.Vacuum = VacuumStats{
		FlushRuns:          vs.FlushRuns.Load(),
		FlushedDeltas:      vs.FlushedDeltas.Load(),
		MergeRuns:          vs.MergeRuns.Load(),
		MergedDeltas:       vs.MergedDeltas.Load(),
		Rebuilds:           vs.Rebuilds.Load(),
		Errors:             vs.Errors.Load(),
		FlushFloorRuns:     vs.FlushFloor.Load(),
		FlushVolumeRuns:    vs.FlushVolume.Load(),
		MergeFloorRuns:     vs.MergeFloor.Load(),
		MergeFileRuns:      vs.MergeFiles.Load(),
		MergeTombstoneRuns: vs.MergeTombstone.Load(),
		KickedRuns:         vs.MergeKicked.Load(),
	}
	gs := db.mgr.GroupCommitStats()
	st.GroupCommit = GroupCommitStats{
		Enabled:  db.mgr.GroupCommitEnabled(),
		Commits:  gs.Commits,
		Fsyncs:   gs.Fsyncs,
		MaxBatch: gs.MaxBatch,
	}
	if db.gov != nil {
		soft, hard := db.gov.Limits()
		govs := db.gov.Stats()
		st.Backpressure = BackpressureStats{
			Enabled:       true,
			SoftLimit:     soft,
			HardLimit:     hard,
			Backlog:       backlog,
			Throttled:     govs.Throttled,
			HardStalls:    govs.HardStalls,
			ThrottleNanos: govs.ThrottleNanos,
		}
	}
	return st
}
