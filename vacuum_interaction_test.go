package tigervector

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestManualVacuumRacesBackgroundMerge is the regression test for the
// documented VacuumInterval contract: Vacuum() is always safe to call,
// including while a background index-merge pass is mid-flight. Before
// merge passes were serialized per store, two overlapping passes could
// both read the same (watermark, flushed] delta-file window and apply it
// twice. Run under -race this also checks the locking of the shared
// delta-file registry.
func TestManualVacuumRacesBackgroundMerge(t *testing.T) {
	db, err := Open(Config{
		SegmentSize:    32,
		Seed:           1,
		DataDir:        t.TempDir(),
		VacuumInterval: time.Millisecond, // background merges constantly
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, db)
	if err := db.Exec(testDDL); err != nil {
		t.Fatal(err)
	}

	const n = 300
	ids := make([]uint64, n)
	vecs := make([][]float32, n)
	for i := 0; i < n; i++ {
		id, err := db.AddVertex("Post", map[string]any{
			"id": int64(i), "language": "English", "length": int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		vecs[i] = []float32{float32(i), float32(i % 7), float32(i % 13), 1, 0, 0, 0, 0}
	}

	// Writers keep the delta store busy while manual Vacuum() calls race
	// the background passes.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.UpsertEmbedding("Post", "content_emb", ids[i%n], vecs[i%n]); err != nil {
				t.Error(err)
				return
			}
			i++
		}
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := db.Vacuum(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Give the background vacuum real overlap time.
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	// With writers stopped, one final drain must converge: every delta
	// merged, watermark caught up to the visible TID, all rows intact.
	if err := db.Vacuum(); err != nil {
		t.Fatal(err)
	}
	for _, ss := range db.Stats().Stores {
		if ss.PendingDeltas != 0 || ss.DeltaFiles != 0 {
			t.Fatalf("store %s not drained: %d pending, %d files", ss.Attr, ss.PendingDeltas, ss.DeltaFiles)
		}
		if ss.Watermark != db.Stats().VisibleTID {
			t.Fatalf("store %s watermark %d != visible %d", ss.Attr, ss.Watermark, db.Stats().VisibleTID)
		}
	}
	res, err := db.Search(context.Background(), Request{
		Kind: TopK, Attrs: []string{"Post.content_emb"}, Query: vecs[0], K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || res.Hits[0].ID != ids[0] {
		t.Fatalf("post-drain search wrong: %+v", res.Hits)
	}
}

// TestDisableVacuumManualOnly pins the DisableVacuum contract: no
// background pass ever runs (VacuumInterval is ignored), committed
// updates serve from the delta store indefinitely, and a manual Vacuum()
// still drains everything.
func TestDisableVacuumManualOnly(t *testing.T) {
	db, err := Open(Config{
		SegmentSize:    32,
		Seed:           1,
		DataDir:        t.TempDir(),
		DisableVacuum:  true,
		VacuumInterval: time.Millisecond, // must be ignored
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, db)
	if err := db.Exec(testDDL); err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		id, err := db.AddVertex("Post", map[string]any{
			"id": int64(i), "language": "English", "length": int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		vec := []float32{float32(i), 0, 0, 0, 0, 0, 0, 0}
		if err := db.UpsertEmbedding("Post", "content_emb", id, vec); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond) // many VacuumIntervals worth
	st := db.Stats()
	if st.Vacuum.FlushRuns != 0 || st.Vacuum.MergeRuns != 0 {
		t.Fatalf("background vacuum ran despite DisableVacuum: %+v", st.Vacuum)
	}
	if st.Backpressure.Enabled {
		t.Fatal("backpressure governor active without a background vacuum")
	}
	total := 0
	for _, ss := range st.Stores {
		total += ss.PendingDeltas
	}
	if total != n {
		t.Fatalf("expected %d pending deltas, got %d", n, total)
	}
	if err := db.Vacuum(); err != nil {
		t.Fatal(err)
	}
	for _, ss := range db.Stats().Stores {
		if ss.PendingDeltas != 0 || ss.DeltaFiles != 0 {
			t.Fatalf("manual Vacuum left store %s undrained: %+v", ss.Attr, ss)
		}
	}
}
