package tigervector

import "testing"

// closeDB closes db and fails the test on error. Since PR 7 Close
// surfaces WAL sync and catalog flush failures instead of swallowing
// them, so tests that close a DB — including the "simulated crash
// boundary" closes that immediately reopen — assert the close was
// clean rather than dropping the durability signal.
func closeDB(tb testing.TB, db *DB) {
	tb.Helper()
	if err := db.Close(); err != nil {
		tb.Fatalf("close db: %v", err)
	}
}
