#!/usr/bin/env bash
# End-to-end cluster test: replication + routing.
#
# Boots one durable primary, two WAL-shipping read replicas
# (`tgvserve -replica-of`) and a `tgvrouter` fronting the three as a
# single shard (primary for writes, replicas for reads). Writes flow
# through the router, replicas are polled to convergence, a replica is
# SIGKILLed to assert honest degradation (partial:true naming the
# shard) followed by recovery via the surviving endpoints, the dead
# replica is restarted and must catch up from its own WAL, and finally
# a fresh replica joins after a checkpoint has truncated the primary's
# WAL — forcing the snapshot-bootstrap path end to end.
#
# Run via `make cluster-test` (CI does).
set -euo pipefail

PORT="${TGV_CLUSTER_PORT:-7711}"   # primary; replicas/router take +1..+4
P="http://127.0.0.1:$((PORT))"
R1="http://127.0.0.1:$((PORT + 1))"
R2="http://127.0.0.1:$((PORT + 2))"
RT="http://127.0.0.1:$((PORT + 3))"
R3="http://127.0.0.1:$((PORT + 4))"
WORK="$(mktemp -d)"
SRV="$WORK/tgvserve"
ROUTER="$WORK/tgvrouter"
PIDS=()
P_PID="" R1_PID="" R2_PID="" R3_PID="" RT_PID=""

cleanup() {
  for pid in "${PIDS[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

die() {
  echo "FAIL: $*" >&2
  for log in "$WORK"/*.log; do
    echo "---- $log (last 15 lines) ----" >&2
    tail -15 "$log" >&2 || true
  done
  exit 1
}

# start_proc logname ready-url cmd... — starts cmd in the background,
# waits for ready-url to answer, and leaves the pid in LAST_PID. Must
# NOT be called in a command substitution: the pid bookkeeping (and the
# cleanup trap relying on it) has to happen in this shell.
LAST_PID=""
start_proc() {
  local log="$WORK/$1.log" ready="$2"
  shift 2
  "$@" >>"$log" 2>&1 &
  LAST_PID=$!
  PIDS+=("$LAST_PID")
  for _ in $(seq 1 150); do
    if curl -sf "$ready/stats" >/dev/null 2>&1; then return 0; fi
    kill -0 "$LAST_PID" 2>/dev/null || die "$1 exited at startup (see $log)"
    sleep 0.1
  done
  die "$1 did not become ready at $ready"
}

post() { # base path body
  curl -sf -X POST "$1$2" -H 'Content-Type: application/json' -d "$3" \
    || die "POST $1$2 failed (body: $3)"
}

search() { # base
  curl -sf -X POST "$1/search" -H 'Content-Type: application/json' \
    -d '{"attrs":["Post.content_emb"],"query":[3,0,0,0,0,0,0,0],"k":3}' \
    || die "search on $1 failed"
}

committed_tid() { # base -> primary's last committed TID
  curl -sf "$1/stats" | grep -o '"last_committed_tid":[0-9]*' | head -1 | cut -d: -f2
}

wait_applied() { # base want — poll a replica until applied_tid == want
  local tid=""
  for _ in $(seq 1 150); do
    tid="$(curl -sf "$1/stats" 2>/dev/null | grep -o '"applied_tid":[0-9]*' | head -1 | cut -d: -f2 || true)"
    [ "$tid" = "$2" ] && return 0
    sleep 0.1
  done
  die "replica $1 stuck at applied_tid=${tid:-none}, want $2"
}

echo "== build"
cd "$(dirname "$0")/.."
go build -o "$SRV" ./cmd/tgvserve
go build -o "$ROUTER" ./cmd/tgvrouter

echo "== boot primary + 2 replicas + router"
start_proc primary "$P" \
  "$SRV" -addr "127.0.0.1:$PORT" -data-dir "$WORK/primary" -durable -seed 1
P_PID="$LAST_PID"
start_proc replica1 "$R1" \
  "$SRV" -addr "127.0.0.1:$((PORT + 1))" -data-dir "$WORK/r1" -durable -seed 1 \
  -replica-of "$P" -pull-interval 100ms
R1_PID="$LAST_PID"
start_proc replica2 "$R2" \
  "$SRV" -addr "127.0.0.1:$((PORT + 2))" -data-dir "$WORK/r2" -durable -seed 1 \
  -replica-of "$P" -pull-interval 100ms
R2_PID="$LAST_PID"
start_proc router "$RT" \
  "$ROUTER" -addr "127.0.0.1:$((PORT + 3))" -shard "s0=$P,$R1,$R2" -cooldown 3s -shard-timeout 2s
RT_PID="$LAST_PID"

echo "== write through the router"
post "$RT" /gsql '{"exec":"CREATE VERTEX Post (id INT PRIMARY KEY, language STRING); CREATE VERTEX Person (id INT PRIMARY KEY, name STRING); CREATE DIRECTED EDGE hasCreator (FROM Post, TO Person); ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE content_emb (DIMENSION = 8, MODEL = GPT4, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);"}' >/dev/null
PERSON_ID="$(post "$RT" /vertex '{"type":"Person","attrs":{"id":1,"name":"ada"}}' | grep -o '"id":[0-9]*' | cut -d: -f2)"
POST3_ID=""
for i in 0 1 2 3 4 5 6 7; do
  ID="$(post "$RT" /vertex "{\"type\":\"Post\",\"attrs\":{\"id\":$i,\"language\":\"en\"}}" | grep -o '"id":[0-9]*' | cut -d: -f2)"
  [ "$i" = 3 ] && POST3_ID="$ID"
  post "$RT" /upsert "{\"type\":\"Post\",\"attr\":\"content_emb\",\"key\":$i,\"vector\":[$i,0,0,0,0,0,0,0]}" >/dev/null
done
post "$RT" /edge "{\"type\":\"hasCreator\",\"from\":$POST3_ID,\"to\":$PERSON_ID}" >/dev/null

echo "== replicas converge to the primary's committed TID"
TID="$(committed_tid "$P")"
[ -n "$TID" ] && [ "$TID" -gt 0 ] || die "primary reports no committed TID"
wait_applied "$R1" "$TID"
wait_applied "$R2" "$TID"
echo "   both replicas at applied_tid=$TID"

echo "== replica serves the same reads, refuses writes with 421"
ROUTED="$(search "$RT")"
echo "$ROUTED" | grep -q '"partial":true' && die "healthy cluster answered partial: $ROUTED"
ROUTED_HITS="$(echo "$ROUTED" | grep -o '"hits":\[[^]]*\]')"
for R in "$R1" "$R2"; do
  DIRECT_HITS="$(search "$R" | grep -o '"hits":\[[^]]*\]')"
  [ "$ROUTED_HITS" = "$DIRECT_HITS" ] || die "replica $R diverges from routed answer: $DIRECT_HITS vs $ROUTED_HITS"
done
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$R1/upsert" \
  -H 'Content-Type: application/json' \
  -d '{"type":"Post","attr":"content_emb","key":0,"vector":[9,0,0,0,0,0,0,0]}')"
[ "$CODE" = "421" ] || die "replica write answered $CODE, want 421"
echo "   identical hits; write to replica rejected with 421"

echo "== SIGKILL replica 1: partial degradation, then recovery"
kill -9 "$R1_PID"
wait "$R1_PID" 2>/dev/null || true
PARTIAL=""
for _ in $(seq 1 40); do
  RESP="$(search "$RT")"
  if echo "$RESP" | grep -q '"partial":true'; then
    PARTIAL="$RESP"
    break
  fi
  sleep 0.05
done
[ -n "$PARTIAL" ] || die "router never reported partial after replica kill"
echo "$PARTIAL" | grep -q '"failed_shards":\["s0"\]' || die "partial response does not name the shard: $PARTIAL"
for _ in $(seq 1 5); do
  RESP="$(search "$RT")"
  echo "$RESP" | grep -q '"partial":true' && die "router still partial after routing around dead replica: $RESP"
  echo "$RESP" | grep -q '"hits":\[{' || die "degraded router lost the answer: $RESP"
done
echo "   one partial:true naming s0, then clean answers from survivors"

echo "== writes keep flowing while degraded"
post "$RT" /upsert '{"type":"Post","attr":"content_emb","key":3,"vector":[3,9,0,0,0,0,0,0]}' >/dev/null
UPDATED=""
for _ in $(seq 1 100); do
  RESP="$(search "$RT")"
  if ! echo "$RESP" | grep -Eq '"distance":0[,}]'; then
    if ! echo "$RESP" | grep -q '"partial":true'; then UPDATED="1"; break; fi
  fi
  sleep 0.1
done
[ -n "$UPDATED" ] || die "surviving replica never served the degraded-mode write"
echo "   surviving replica converged on the new write"

echo "== dead replica restarts and catches up from its own WAL"
start_proc replica1-restart "$R1" \
  "$SRV" -addr "127.0.0.1:$((PORT + 1))" -data-dir "$WORK/r1" -durable -seed 1 \
  -replica-of "$P" -pull-interval 100ms
R1_PID="$LAST_PID"
TID="$(committed_tid "$P")"
wait_applied "$R1" "$TID"
sleep 3  # let the router's cooldown on the killed endpoint expire
for _ in $(seq 1 10); do
  RESP="$(search "$RT")"
  echo "$RESP" | grep -q '"partial":true' && die "router partial after replica recovered: $RESP"
done
echo "   replica back at applied_tid=$TID, router clean"

echo "== fresh replica joins after checkpoint: snapshot bootstrap"
post "$RT" /checkpoint '{}' >/dev/null
WAL_BYTES="$(wc -c <"$WORK/primary/wal.log")"
[ "$WAL_BYTES" -eq 0 ] || die "checkpoint did not truncate the primary WAL ($WAL_BYTES bytes)"
start_proc replica3 "$R3" \
  "$SRV" -addr "127.0.0.1:$((PORT + 4))" -data-dir "$WORK/r3" -durable -seed 1 \
  -replica-of "$P" -pull-interval 100ms
R3_PID="$LAST_PID"
TID="$(committed_tid "$P")"
wait_applied "$R3" "$TID"
grep -q "re-seeding .* from snapshot" "$WORK/replica3.log" \
  || die "fresh replica did not take the snapshot-bootstrap path"
R3_HITS="$(search "$R3" | grep -o '"hits":\[[^]]*\]')"
ROUTED_HITS="$(search "$RT" | grep -o '"hits":\[[^]]*\]')"
[ "$R3_HITS" = "$ROUTED_HITS" ] || die "bootstrapped replica diverges: $R3_HITS vs $ROUTED_HITS"
echo "   bootstrapped past the truncated WAL to applied_tid=$TID, identical hits"

echo "PASS: replication + router cluster (convergence, 421, partial degradation, recovery, snapshot bootstrap) verified"
