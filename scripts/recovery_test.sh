#!/usr/bin/env bash
# Crash-recovery integration test for tgvserve.
#
# Starts a durable server, loads vertices, edges and embeddings over
# HTTP, captures a search result, then SIGKILLs the process — including
# once with a deliberately torn WAL tail, the on-disk state a crash
# mid-append leaves behind — restarts it and asserts the recovered
# server answers the exact same bytes. Finally it checkpoints, verifies
# the WAL shrank to zero, kills again and re-asserts.
#
# A second DB then runs the same discipline under WAL group commit:
# concurrent acknowledged writes coalesced into few fsyncs must survive
# SIGKILL, and a torn (unacknowledged) tail must be discarded — by a
# restarted server with OR without group commit, proving the record
# stream stays byte-compatible.
#
# Run via `make recovery-test` (CI does).
set -euo pipefail

PORT="${TGV_PORT:-7697}"
BASE="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
DATA="$WORK/data"
BIN="$WORK/tgvserve"
SRV_PID=""

cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

die() { echo "FAIL: $*" >&2; exit 1; }

start_server() { # [extra tgvserve flags...]
  "$BIN" -addr "127.0.0.1:${PORT}" -data-dir "$DATA" -durable -seed 1 "$@" \
    >>"$WORK/server.log" 2>&1 &
  SRV_PID=$!
  for _ in $(seq 1 100); do
    if curl -sf "$BASE/stats" >/dev/null 2>&1; then return 0; fi
    kill -0 "$SRV_PID" 2>/dev/null || { cat "$WORK/server.log" >&2; die "server exited at startup"; }
    sleep 0.1
  done
  cat "$WORK/server.log" >&2
  die "server did not become ready"
}

kill9_server() {
  kill -9 "$SRV_PID"
  wait "$SRV_PID" 2>/dev/null || true
  SRV_PID=""
}

post() { # path body
  curl -sf -X POST "$BASE$1" -H 'Content-Type: application/json' -d "$2" \
    || die "POST $1 failed (body: $2)"
}

search() {
  curl -sf -X POST "$BASE/search" -H 'Content-Type: application/json' \
    -d '{"attrs":["Post.content_emb"],"query":[3,0,0,0,0,0,0,0],"k":3}' \
    || die "search failed"
}

echo "== build"
cd "$(dirname "$0")/.."
go build -o "$BIN" ./cmd/tgvserve

echo "== start + load"
mkdir -p "$DATA"
start_server
post /gsql '{"exec":"CREATE VERTEX Post (id INT PRIMARY KEY, language STRING); CREATE VERTEX Person (id INT PRIMARY KEY, name STRING); CREATE DIRECTED EDGE hasCreator (FROM Post, TO Person); ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE content_emb (DIMENSION = 8, MODEL = GPT4, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);"}' >/dev/null
post /vertex '{"type":"Person","attrs":{"id":1,"name":"ada"}}' >/dev/null
for i in 0 1 2 3 4 5 6 7; do
  post /vertex "{\"type\":\"Post\",\"attrs\":{\"id\":$i,\"language\":\"en\"}}" >/dev/null
  post /upsert "{\"type\":\"Post\",\"attr\":\"content_emb\",\"key\":$i,\"vector\":[$i,0,0,0,0,0,0,0]}" >/dev/null
done
post /edge '{"type":"hasCreator","from":3,"to":0}' >/dev/null
BEFORE="$(search)"
echo "   search before crash: $BEFORE"
[ -s "$DATA/wal.log" ] || die "wal.log empty after load"

echo "== SIGKILL + torn WAL tail + restart"
kill9_server
# Simulate a crash mid-append: re-append the first 25 bytes of the WAL
# (a valid magic plus a partial record) as a torn tail.
head -c 25 "$DATA/wal.log" >>"$DATA/wal.log"
WAL_TORN=$(wc -c <"$DATA/wal.log")
start_server
AFTER="$(search)"
[ "$BEFORE" = "$AFTER" ] || die "post-crash search diverged: $AFTER"
WAL_REPAIRED=$(wc -c <"$DATA/wal.log")
[ "$WAL_REPAIRED" -lt "$WAL_TORN" ] || die "torn tail not truncated ($WAL_TORN -> $WAL_REPAIRED)"
curl -sf "$BASE/stats" | grep -q '"visible_tid"' || die "stats unavailable after recovery"
echo "   identical results; wal repaired $WAL_TORN -> $WAL_REPAIRED bytes"

echo "== checkpoint truncates WAL"
# Give the background vacuum a moment to merge the replayed deltas into
# the segment indexes, so the checkpoint's index snapshot covers them and
# the next restart can take the snapshot path.
sleep 1.5
CP="$(post /checkpoint '{}')"
echo "   checkpoint: $CP"
echo "$CP" | grep -Eq '"index_bytes":[1-9]' || die "checkpoint wrote no index snapshot: $CP"
WAL_AFTER_CP=$(wc -c <"$DATA/wal.log")
[ "$WAL_AFTER_CP" -eq 0 ] || die "wal not truncated by checkpoint ($WAL_AFTER_CP bytes)"
[ -f "$DATA/checkpoint.json" ] || die "checkpoint manifest missing"
ls "$DATA"/checkpoint-*.index >/dev/null 2>&1 || die "index snapshot file missing"

echo "== post-checkpoint write + SIGKILL + restart"
post /upsert '{"type":"Post","attr":"content_emb","key":3,"vector":[3,9,0,0,0,0,0,0]}' >/dev/null
kill9_server
start_server
FINAL="$(search)"
echo "$FINAL" | grep -q '"hits"' || die "no hits after final restart: $FINAL"
echo "$FINAL" | grep -Eq '"distance":0[,}]' && die "stale pre-checkpoint vector served: $FINAL"
# The restart must have taken the index-snapshot fast path: every segment
# index deserialized, none rebuilt from vectors.
STATS="$(curl -sf "$BASE/stats")" || die "stats unavailable after snapshot restart"
echo "$STATS" | grep -q '"index_rebuilt_segments":0' \
  || die "restart rebuilt segment indexes instead of loading snapshots: $STATS"
echo "$STATS" | grep -Eq '"index_snapshot_segments":[1-9]' \
  || die "restart loaded no index snapshots: $STATS"
echo "   restart took the index-snapshot path (0 rebuilds)"
kill9_server

echo "== group commit: concurrent acked writes survive SIGKILL"
# Fresh DB with WAL group commit: many concurrent committers coalesce
# into few fsyncs, then the process dies without any graceful close.
# Every write that was acknowledged over HTTP must be durable; the WAL
# byte stream must replay identically whether or not group commit is on
# for the restarted process.
DATA="$WORK/data-gc"
mkdir -p "$DATA"
start_server -group-commit
post /gsql '{"exec":"CREATE VERTEX Post (id INT PRIMARY KEY, language STRING); ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE content_emb (DIMENSION = 8, MODEL = GPT4, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);"}' >/dev/null
for i in $(seq 0 15); do
  post /vertex "{\"type\":\"Post\",\"attrs\":{\"id\":$i,\"language\":\"en\"}}" >/dev/null
done
# 8 concurrent writers x 8 upserts each: every one of these curl calls
# returning success is a durably acknowledged group commit. (Wait on
# the writer pids specifically — a bare `wait` would also wait on the
# backgrounded server, which never exits.)
WRITER_PIDS=()
for w in 0 1 2 3 4 5 6 7; do
  (
    for r in $(seq 0 7); do
      key=$(( (w * 8 + r) % 16 ))
      post /upsert "{\"type\":\"Post\",\"attr\":\"content_emb\",\"key\":$key,\"vector\":[$key,7,0,0,0,0,0,0]}" >/dev/null
    done
  ) &
  WRITER_PIDS+=($!)
done
for pid in "${WRITER_PIDS[@]}"; do
  wait "$pid" || die "concurrent writer failed"
done
STATS="$(curl -sf "$BASE/stats")" || die "stats unavailable under group commit"
echo "$STATS" | grep -Eq '"group_commit":\{"enabled":true' || die "group commit not enabled: $STATS"
GC_COMMITS=$(echo "$STATS" | sed -E 's/.*"group_commit":[^}]*"commits":([0-9]+).*/\1/')
GC_FSYNCS=$(echo "$STATS" | sed -E 's/.*"group_commit":[^}]*"fsyncs":([0-9]+).*/\1/')
[ "$GC_COMMITS" -ge 64 ] || die "expected >= 64 group commits, got $GC_COMMITS"
[ "$GC_FSYNCS" -lt "$GC_COMMITS" ] || die "no coalescing: $GC_FSYNCS fsyncs for $GC_COMMITS commits"
GC_BEFORE="$(search)"
echo "   $GC_COMMITS commits in $GC_FSYNCS fsyncs before crash"

kill9_server
start_server -group-commit
GC_AFTER="$(search)"
[ "$GC_BEFORE" = "$GC_AFTER" ] || die "acked group commits lost after SIGKILL: $GC_AFTER"
echo "   identical results after SIGKILL under group commit"

echo "== group commit: torn WAL tail is discarded, not replayed"
# A crash mid-batch leaves a partial record past the last complete
# fsync'd batch — the unacknowledged suffix. Recovery must truncate it
# and serve exactly the acknowledged state.
kill9_server
head -c 25 "$DATA/wal.log" >>"$DATA/wal.log"
# Restart WITHOUT group commit: the stream is byte-compatible, so a
# plain-durability server must recover the same state.
start_server
GC_TORN="$(search)"
[ "$GC_BEFORE" = "$GC_TORN" ] || die "group-commit WAL not byte-compatible across torn-tail recovery: $GC_TORN"
echo "   torn tail discarded; plain-durability restart serves identical results"
kill9_server

echo "PASS: crash recovery (torn tail + checkpoint + group commit) verified"
