// Package server implements the tgvserve HTTP/JSON serving layer over a
// tigervector.DB: concurrent top-k and range search (single or pooled
// batch), transactional embedding upserts and deletes, GSQL
// installation and execution, and an observability endpoint. The
// cmd/tgvserve binary is a thin flag wrapper around this package, so
// tests and examples can embed the server in-process.
//
// Endpoints (all JSON; wire types live in repro/client so client and
// server share one protocol definition):
//
//	POST /vertex     client.VertexRequest  -> client.VertexResponse
//	POST /edge       client.EdgeRequest    -> client.EdgeResponse
//	POST /search     client.SearchRequest  -> client.SearchResponse
//	POST /range      client.RangeRequest   -> client.SearchResponse
//	POST /get        client.GetRequest     -> client.GetResponse
//	POST /upsert     client.UpsertRequest  -> client.UpsertResponse
//	POST /delete     client.DeleteRequest  -> client.DeleteResponse
//	POST /gsql       client.GSQLRequest    -> client.GSQLResponse
//	POST /checkpoint                       -> client.CheckpointResponse
//	GET  /stats                            -> server.Stats
//	GET  /repl/state                       -> client.ReplStateResponse
//	GET  /repl/pull?since=T&catalog=N      -> cluster pull-frame stream
//	GET  /repl/file?name=F                 -> raw snapshot/catalog file
//
// The /repl endpoints are the primary side of WAL-shipping replication
// (see repro/internal/cluster): /repl/pull streams committed records
// above a TID, answering 409 when the position predates the newest
// checkpoint (the replica must bootstrap from /repl/file instead).
// A server started in replica mode (Options.Replica, tgvserve
// -replica-of) answers every mutating endpoint with 421 Misdirected
// Request — writes belong on the primary — and reports its replication
// position in the "replication" block of /stats.
//
// Concurrency model: net/http serves each request on its own goroutine;
// every search funnels into DB.SearchBatch, whose bounded worker pool
// (tigervector.Config.Workers wide) is the single admission point for
// query execution. A traffic burst therefore queues at the pool instead
// of oversubscribing the segment fan-out, and every query runs at its
// own MVCC snapshot TID with vacuum safety preserved by the per-store
// ActiveTrackers. The request context flows all the way down: a client
// disconnect, a wire-level timeout_ms, or the server's default
// -request-timeout cancels the segment scans mid-flight and frees the
// pool slot instead of burning a worker on an abandoned request.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	tigervector "repro"
	"repro/client"
	"repro/internal/cluster"
)

// Options configures a Server. The zero value is usable.
type Options struct {
	// MaxBatch caps query vectors per /search request. Default 1024.
	MaxBatch int
	// RequestTimeout is the default server-side deadline applied to
	// every search request that does not set its own timeout_ms. Zero
	// applies no default deadline. Either way the request context is
	// also cancelled when the client disconnects, which stops the
	// segment scans and frees the worker-pool slot.
	RequestTimeout time.Duration
	// Logf receives one line per failed request; nil disables logging.
	Logf func(format string, args ...any)
	// Replica rejects every mutating endpoint with 421 Misdirected
	// Request: this server applies replicated records only, and a write
	// accepted here would fork its TID sequence from the primary's.
	Replica bool
	// Replication, when non-nil, supplies the replica's pull position
	// for the "replication" block of /stats.
	Replication func() *client.ReplicationStats
}

// Counters tallies requests per endpoint since server start.
type Counters struct {
	// Vertex counts /vertex requests.
	Vertex int64 `json:"vertex"`
	// Edge counts /edge requests.
	Edge int64 `json:"edge"`
	// Search counts /search requests.
	Search int64 `json:"search"`
	// Range counts /range requests.
	Range int64 `json:"range"`
	// Get counts /get requests.
	Get int64 `json:"get"`
	// Upsert counts /upsert requests.
	Upsert int64 `json:"upsert"`
	// Delete counts /delete requests.
	Delete int64 `json:"delete"`
	// GSQL counts /gsql requests.
	GSQL int64 `json:"gsql"`
	// Checkpoint counts /checkpoint requests.
	Checkpoint int64 `json:"checkpoint"`
	// Stats counts /stats requests.
	Stats int64 `json:"stats"`
	// Repl counts /repl/* requests (state, pull and file together).
	Repl int64 `json:"repl"`
	// ReplicaRejected counts writes answered 421 in replica mode.
	ReplicaRejected int64 `json:"replica_rejected"`
	// Errors counts requests answered with a non-2xx status.
	Errors int64 `json:"errors"`
}

// Stats is the body answering GET /stats.
type Stats struct {
	// UptimeSeconds is the time since the server was created.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests tallies served requests per endpoint.
	Requests Counters `json:"requests"`
	// DB is the database snapshot (MVCC, stores, vacuum, pool).
	DB tigervector.DBStats `json:"db"`
	// Replication is the replica's pull position; absent on primaries.
	Replication *client.ReplicationStats `json:"replication,omitempty"`
}

// Server serves one tigervector.DB over HTTP.
type Server struct {
	db    *tigervector.DB
	opts  Options
	mux   *http.ServeMux
	start time.Time

	vertex, edge, search, rng, get, upsert, del, gsql, cp, stats, repl, rejected, errs atomic.Int64

	srvMu   sync.Mutex
	httpSrv *http.Server // guarded by srvMu
	closed  bool         // guarded by srvMu
}

// New wraps db in a Server. The caller keeps ownership of db and closes
// it after Shutdown.
func New(db *tigervector.DB, opts Options) *Server {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 1024
	}
	s := &Server{db: db, opts: opts, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("/vertex", s.method(http.MethodPost, s.writable(s.handleVertex)))
	s.mux.HandleFunc("/edge", s.method(http.MethodPost, s.writable(s.handleEdge)))
	s.mux.HandleFunc("/search", s.method(http.MethodPost, s.handleSearch))
	s.mux.HandleFunc("/range", s.method(http.MethodPost, s.handleRange))
	s.mux.HandleFunc("/get", s.method(http.MethodPost, s.handleGet))
	s.mux.HandleFunc("/upsert", s.method(http.MethodPost, s.writable(s.handleUpsert)))
	s.mux.HandleFunc("/delete", s.method(http.MethodPost, s.writable(s.handleDelete)))
	s.mux.HandleFunc("/gsql", s.method(http.MethodPost, s.writable(s.handleGSQL)))
	s.mux.HandleFunc("/checkpoint", s.method(http.MethodPost, s.handleCheckpoint))
	s.mux.HandleFunc("/stats", s.method(http.MethodGet, s.handleStats))
	s.mux.HandleFunc("/repl/state", s.method(http.MethodGet, s.handleReplState))
	s.mux.HandleFunc("/repl/pull", s.method(http.MethodGet, s.handleReplPull))
	s.mux.HandleFunc("/repl/file", s.method(http.MethodGet, s.handleReplFile))
	return s
}

// writable guards a mutating handler against replica mode. Both /gsql
// branches are gated, not just exec: run executes server-defined
// queries that may write derived state (tg_louvain materializes
// community attributes), which would fork the replica's TID sequence.
// Reads go through /search, /range and /get, which replicas serve.
func (s *Server) writable(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.opts.Replica {
			s.rejected.Add(1)
			s.fail(w, http.StatusMisdirectedRequest, "replica: writes must go to the primary")
			return
		}
		h(w, r)
	}
}

// method guards a handler to one HTTP method.
func (s *Server) method(want string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != want {
			s.fail(w, http.StatusMethodNotAllowed, "%s requires %s", r.URL.Path, want)
			return
		}
		h(w, r)
	}
}

// Handler returns the server's HTTP handler, for embedding into an
// existing mux or an httptest server.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe binds addr and serves until Shutdown. Like
// http.Server.ListenAndServe it returns http.ErrServerClosed after a
// graceful shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve serves on an existing listener until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.srvMu.Lock()
	if s.closed {
		s.srvMu.Unlock()
		_ = l.Close()
		return http.ErrServerClosed
	}
	srv := &http.Server{Handler: s.mux}
	s.httpSrv = srv
	s.srvMu.Unlock()
	return srv.Serve(l)
}

// Shutdown gracefully stops the server: the listener closes immediately,
// in-flight requests run to completion or until ctx expires. A Serve
// that has not started yet fails fast with http.ErrServerClosed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.srvMu.Lock()
	s.closed = true
	srv := s.httpSrv
	s.srvMu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// handleVertex answers POST /vertex: insert (or upsert by primary key)
// one vertex. Embeddings written for ids without a live vertex are
// filtered out of every search, so this is the first call of any
// over-HTTP loading session.
func (s *Server) handleVertex(w http.ResponseWriter, r *http.Request) {
	s.vertex.Add(1)
	var req client.VertexRequest
	if !s.decode(w, r, &req) {
		return
	}
	attrs := make(map[string]any, len(req.Attrs))
	for k, v := range req.Attrs {
		attrs[k] = coerceScalar(v)
	}
	id, err := s.db.AddVertex(req.Type, attrs)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, client.VertexResponse{ID: id})
}

// handleEdge answers POST /edge: insert one edge between existing
// vertices.
func (s *Server) handleEdge(w http.ResponseWriter, r *http.Request) {
	s.edge.Add(1)
	var req client.EdgeRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.db.AddEdge(req.Type, req.From, req.To); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, client.EdgeResponse{})
}

// requestContext derives the execution context of a search request:
// the HTTP request context (cancelled on client disconnect) plus the
// wire-level timeout_ms, falling back to the server's default request
// timeout. The caller must call the returned cancel func.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	timeout := s.opts.RequestTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		return context.WithTimeout(ctx, timeout)
	}
	return context.WithCancel(ctx)
}

// wireFilter converts the optional wire-level pre-filter.
func wireFilter(f *client.Filter) *tigervector.VertexSet {
	if f == nil {
		return nil
	}
	return &tigervector.VertexSet{Type: f.Type, IDs: f.IDs}
}

// handleSearch answers POST /search: one query vector or a pooled batch.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	s.search.Add(1)
	var req client.SearchRequest
	if !s.decode(w, r, &req) {
		return
	}
	single := req.Query != nil
	if single == (len(req.Queries) > 0) {
		s.fail(w, http.StatusBadRequest, "exactly one of query/queries required")
		return
	}
	if req.K <= 0 {
		// Every index path short-circuits k <= 0 into an empty result;
		// answering 200 with no hits reads as "nothing matched", so
		// reject the request instead.
		s.fail(w, http.StatusBadRequest, "k must be >= 1, got %d", req.K)
		return
	}
	if len(req.Queries) > s.opts.MaxBatch {
		s.fail(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Queries), s.opts.MaxBatch)
		return
	}
	vecs := req.Queries
	if single {
		vecs = [][]float32{req.Query}
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	// One shared filter for the whole batch: SearchBatch converts each
	// distinct filter pointer to its engine bitmap once.
	filter := wireFilter(req.Filter)
	reqs := make([]tigervector.Request, len(vecs))
	for i, q := range vecs {
		reqs[i] = tigervector.Request{
			Kind: tigervector.TopK, Attrs: req.Attrs, Query: q, K: req.K,
			Ef: req.Ef, Filter: filter, AtTID: req.AtTID,
		}
	}
	s.writeJSON(w, searchResponse(s.db.SearchBatch(ctx, reqs)))
}

// handleRange answers POST /range.
func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	s.rng.Add(1)
	var req client.RangeRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Query) == 0 {
		s.fail(w, http.StatusBadRequest, "query vector required")
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	// No sign check on Threshold: inner-product metrics encode "dot >= x"
	// as a negative distance bound.
	res := s.db.SearchBatch(ctx, []tigervector.Request{{
		Kind: tigervector.Range, Attrs: []string{req.Attr}, Query: req.Query,
		Threshold: req.Threshold, Ef: req.Ef,
		Filter: wireFilter(req.Filter), AtTID: req.AtTID,
	}})
	s.writeJSON(w, searchResponse(res))
}

// handleGet answers POST /get: read one embedding by vertex id or
// primary key, optionally pinned to a snapshot TID. Replicas serve it
// like any read — with at_tid it is the byte-level staleness probe of
// the replication contract: a replica read pinned at TID t returns
// exactly what the primary returns at t.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.get.Add(1)
	var req client.GetRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Type == "" || req.Attr == "" {
		s.fail(w, http.StatusBadRequest, "type and attr required")
		return
	}
	id, ok := s.resolveVertex(req.Type, req.ID, req.Key)
	if !ok {
		s.fail(w, http.StatusNotFound, "no %s vertex for id/key", req.Type)
		return
	}
	ctx, cancel := s.requestContext(r, 0)
	defer cancel()
	res, err := s.db.Search(ctx, tigervector.Request{
		Kind: tigervector.Get, Attrs: []string{req.Type + "." + req.Attr},
		ID: id, AtTID: req.AtTID,
	})
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, client.GetResponse{
		ID: id, Vector: res.Vector, Found: res.Found, SnapshotTID: res.SnapshotTID,
	})
}

// handleReplState answers GET /repl/state.
func (s *Server) handleReplState(w http.ResponseWriter, r *http.Request) {
	s.repl.Add(1)
	st := s.db.ReplState()
	s.writeJSON(w, client.ReplStateResponse{
		LastCommittedTID:  st.LastCommittedTID,
		LastCheckpointTID: st.CheckpointTID,
		CatalogLen:        st.CatalogLen,
		Durable:           s.db.Durable(),
	})
}

// handleReplPull answers GET /repl/pull?since=T&catalog=N: the WAL-
// shipping stream. 409 means the replica's position predates the newest
// checkpoint and it must bootstrap via /repl/file. A mid-stream fault
// (WAL rotated under the reader) cuts the stream without its end frame —
// that missing frame IS the abort signal, since the status line is long
// gone by then; the replica keeps the valid prefix and re-pulls.
func (s *Server) handleReplPull(w http.ResponseWriter, r *http.Request) {
	s.repl.Add(1)
	if !s.db.Durable() {
		s.fail(w, http.StatusNotImplemented, "replication requires a durable primary (-durable)")
		return
	}
	q := r.URL.Query()
	since, err := strconv.ParseUint(q.Get("since"), 10, 64)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad since: %v", err)
		return
	}
	catalogOff := int64(0)
	if c := q.Get("catalog"); c != "" {
		catalogOff, err = strconv.ParseInt(c, 10, 64)
		if err != nil || catalogOff < 0 {
			s.fail(w, http.StatusBadRequest, "bad catalog offset %q", c)
			return
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := cluster.WritePull(w, s.db, since, catalogOff); err != nil {
		if errors.Is(err, cluster.ErrSnapshotRequired) {
			// WritePull refuses before writing anything, so the status
			// line is still ours to send.
			s.fail(w, http.StatusConflict, "%v", err)
			return
		}
		s.errs.Add(1)
		if s.opts.Logf != nil {
			s.opts.Logf("server: repl/pull since=%d: %v", since, err)
		}
	}
}

// handleReplFile answers GET /repl/file?name=F: one whitelisted
// data-dir file (checkpoint manifest, snapshot files, catalog log) for
// replica bootstrap.
func (s *Server) handleReplFile(w http.ResponseWriter, r *http.Request) {
	s.repl.Add(1)
	name := r.URL.Query().Get("name")
	f, err := s.db.OpenReplFile(name)
	if err != nil {
		if os.IsNotExist(err) {
			s.fail(w, http.StatusNotFound, "no such file %q", name)
			return
		}
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer func() { _ = f.Close() }()
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := io.Copy(w, f); err != nil && s.opts.Logf != nil {
		s.opts.Logf("server: repl/file %s: %v", name, err)
	}
}

// searchResponse converts request results to the wire shape.
func searchResponse(results []tigervector.Result) client.SearchResponse {
	out := client.SearchResponse{Results: make([]client.SearchResult, len(results))}
	for i, r := range results {
		sr := client.SearchResult{SnapshotTID: r.SnapshotTID, Hits: make([]client.Hit, len(r.Hits))}
		for j, h := range r.Hits {
			sr.Hits[j] = client.Hit{Type: h.VertexType, ID: h.ID, Distance: h.Distance}
		}
		if p := r.Plan; p != nil {
			sr.Plan = &client.PlanInfo{
				Candidates:      p.Candidates,
				Live:            p.Live,
				Selectivity:     p.Selectivity,
				Ef:              p.Ef,
				BruteSegments:   p.BruteSegments,
				BitmapSegments:  p.BitmapSegments,
				PostSegments:    p.PostSegments,
				SkippedSegments: p.SkippedSegments,
			}
		}
		if r.Err != nil {
			sr.Error = r.Err.Error()
		}
		out.Results[i] = sr
	}
	return out
}

// handleUpsert answers POST /upsert.
func (s *Server) handleUpsert(w http.ResponseWriter, r *http.Request) {
	s.upsert.Add(1)
	var req client.UpsertRequest
	if !s.decode(w, r, &req) {
		return
	}
	id, ok := s.resolveVertex(req.Type, req.ID, req.Key)
	if !ok {
		s.fail(w, http.StatusNotFound, "no %s vertex for id/key", req.Type)
		return
	}
	if err := s.db.UpsertEmbedding(req.Type, req.Attr, id, req.Vector); err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, client.UpsertResponse{ID: id})
}

// handleDelete answers POST /delete.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.del.Add(1)
	var req client.DeleteRequest
	if !s.decode(w, r, &req) {
		return
	}
	id, ok := s.resolveVertex(req.Type, req.ID, req.Key)
	if !ok {
		s.fail(w, http.StatusNotFound, "no %s vertex for id/key", req.Type)
		return
	}
	var err error
	if req.Vertex {
		err = s.db.DeleteVertex(req.Type, id)
	} else {
		err = s.db.DeleteEmbedding(req.Type, req.Attr, id)
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, client.DeleteResponse{ID: id})
}

// resolveVertex maps an (id | primary key) address to a vertex id.
func (s *Server) resolveVertex(vertexType string, id *uint64, key any) (uint64, bool) {
	if id != nil {
		return *id, true
	}
	if key == nil {
		return 0, false
	}
	return s.db.VertexByKey(vertexType, coerceScalar(key))
}

// handleGSQL answers POST /gsql: install statements or run a query.
func (s *Server) handleGSQL(w http.ResponseWriter, r *http.Request) {
	s.gsql.Add(1)
	var req client.GSQLRequest
	if !s.decode(w, r, &req) {
		return
	}
	switch {
	case req.Exec != "" && req.Run == "":
		if err := s.db.Exec(req.Exec); err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.writeJSON(w, client.GSQLResponse{})
	case req.Run != "" && req.Exec == "":
		args := make(map[string]any, len(req.Args))
		for k, v := range req.Args {
			args[k] = coerceScalar(v)
		}
		res, err := s.db.Run(req.Run, args)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		resp := client.GSQLResponse{
			Plans: res.Plans,
			Stats: client.GSQLStats{
				EndToEndSeconds:     res.Stats.EndToEnd,
				VectorSearchSeconds: res.Stats.VectorSearchTime,
				Candidates:          res.Stats.Candidates,
				Selectivity:         res.Stats.Selectivity,
				Plan:                res.Stats.Plan,
			},
		}
		for _, o := range res.Outputs {
			raw, err := json.Marshal(jsonValue(o.Value))
			if err != nil {
				s.fail(w, http.StatusInternalServerError, "encode output %s: %v", o.Name, err)
				return
			}
			resp.Outputs = append(resp.Outputs, client.GSQLOutput{Name: o.Name, Value: raw})
		}
		s.writeJSON(w, resp)
	default:
		s.fail(w, http.StatusBadRequest, "exactly one of exec/run required")
	}
}

// handleCheckpoint answers POST /checkpoint: snapshot the database state
// and truncate the WAL, bounding the next restart's recovery time. The
// call blocks writes (not reads) while the snapshot is written.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	s.cp.Add(1)
	info, err := s.db.Checkpoint()
	if err != nil {
		status := http.StatusInternalServerError
		if err == tigervector.ErrNotDurable {
			status = http.StatusBadRequest
		}
		s.fail(w, status, "%v", err)
		return
	}
	s.writeJSON(w, client.CheckpointResponse{
		TID:               info.TID,
		GraphBytes:        info.GraphBytes,
		EmbeddingBytes:    info.EmbeddingBytes,
		IndexBytes:        info.IndexBytes,
		WALTruncatedBytes: info.WALTruncatedBytes,
		DurationSeconds:   info.DurationSeconds,
	})
}

// handleStats answers GET /stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.stats.Add(1)
	body := Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests: Counters{
			Vertex: s.vertex.Load(), Edge: s.edge.Load(),
			Search: s.search.Load(), Range: s.rng.Load(), Get: s.get.Load(),
			Upsert: s.upsert.Load(), Delete: s.del.Load(),
			GSQL: s.gsql.Load(), Checkpoint: s.cp.Load(),
			Stats: s.stats.Load(), Repl: s.repl.Load(),
			ReplicaRejected: s.rejected.Load(),
			Errors:          s.errs.Load(),
		},
		DB: s.db.Stats(),
	}
	if s.opts.Replication != nil {
		body.Replication = s.opts.Replication()
	}
	s.writeJSON(w, body)
}

// jsonValue rewrites query outputs into JSON-friendly shapes.
func jsonValue(v any) any {
	switch x := v.(type) {
	case *tigervector.VertexSet:
		return map[string]any{"type": x.Type, "ids": x.IDs}
	case []*tigervector.VertexSet:
		out := make([]any, len(x))
		for i, s := range x {
			out[i] = jsonValue(s)
		}
		return out
	default:
		return v
	}
}

// coerceScalar maps decoded JSON values onto the Go types the GSQL
// binder and the graph primary-key index expect: integral float64
// becomes int64, and an all-number array becomes []float64 (a vector).
func coerceScalar(v any) any {
	switch x := v.(type) {
	case float64:
		if x == float64(int64(x)) {
			return int64(x)
		}
	case []any:
		vec := make([]float64, len(x))
		for i, e := range x {
			f, ok := e.(float64)
			if !ok {
				return v
			}
			vec[i] = f
		}
		return vec
	}
	return v
}

// decode reads one JSON body; on failure it answers 400 and returns
// false.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, 256<<20))
	if err == nil {
		err = json.Unmarshal(body, into)
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// writeJSON answers 200 with a JSON body.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil && s.opts.Logf != nil {
		s.opts.Logf("server: write response: %v", err)
	}
}

// fail answers an error status with a JSON error body.
func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.errs.Add(1)
	msg := fmt.Sprintf(format, args...)
	if s.opts.Logf != nil {
		s.opts.Logf("server: %d %s", status, msg)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(client.ErrorResponse{Error: msg})
}
