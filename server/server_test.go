package server

import (
	"context"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	tigervector "repro"
	"repro/client"
)

const testDDL = `
CREATE VERTEX Post (id INT PRIMARY KEY, language STRING, length INT);
ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE content_emb (
  DIMENSION = 8, MODEL = GPT4, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);
`

// closeDB closes db and fails the test if the close — which flushes
// and syncs the WAL — reports an error.
func closeDB(tb testing.TB, db *tigervector.DB) {
	tb.Helper()
	if err := db.Close(); err != nil {
		tb.Fatalf("close db: %v", err)
	}
}

// newTestServer builds a DB with n posts behind an httptest server and
// returns a client pointed at it plus the loaded ids and vectors.
func newTestServer(t *testing.T, n int) (*client.Client, []uint64, [][]float32) {
	t.Helper()
	db, err := tigervector.Open(tigervector.Config{SegmentSize: 32, Seed: 1, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { closeDB(t, db) })
	if err := db.Exec(testDDL); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	var ids []uint64
	var vecs [][]float32
	for i := 0; i < n; i++ {
		lang := "English"
		if i%2 == 0 {
			lang = "French"
		}
		id, _ := db.AddVertex("Post", map[string]any{
			"id": int64(i), "language": lang, "length": int64(i)})
		v := make([]float32, 8)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		ids = append(ids, id)
		vecs = append(vecs, v)
	}
	if err := db.BulkLoadEmbeddings("Post", "content_emb", ids, vecs); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(db, Options{}).Handler())
	t.Cleanup(ts.Close)
	return client.New(ts.URL), ids, vecs
}

func TestVertexAndEdgeOverHTTP(t *testing.T) {
	c, _, _ := newTestServer(t, 4)
	ctx := context.Background()
	// A fresh vertex created over HTTP is immediately upsert- and
	// search-able (liveness filter admits it).
	id, err := c.AddVertex(ctx, "Post", map[string]any{"id": 100, "language": "English"})
	if err != nil {
		t.Fatal(err)
	}
	vec := []float32{7, 7, 7, 7, 7, 7, 7, 7}
	if err := c.Upsert(ctx, "Post", "content_emb", id, vec); err != nil {
		t.Fatal(err)
	}
	hits, err := c.Search(ctx, []string{"Post.content_emb"}, vec, 1, 0)
	if err != nil || len(hits) != 1 || hits[0].ID != id || hits[0].Distance != 0 {
		t.Fatalf("search for fresh vertex = %+v, %v", hits, err)
	}
	// Unknown vertex type and unknown edge type are 4xx.
	if _, err := c.AddVertex(ctx, "Nope", map[string]any{"id": 1}); err == nil {
		t.Fatal("unknown vertex type accepted")
	}
	if err := c.AddEdge(ctx, "nopeEdge", id, id); err == nil {
		t.Fatal("unknown edge type accepted")
	}
}

func TestSearchHappyPath(t *testing.T) {
	c, ids, vecs := newTestServer(t, 60)
	hits, err := c.Search(context.Background(), []string{"Post.content_emb"}, vecs[7], 5, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 5 || hits[0].ID != ids[7] || hits[0].Distance != 0 || hits[0].Type != "Post" {
		t.Fatalf("hits = %+v", hits)
	}
}

func TestBatchSearchOverHTTP(t *testing.T) {
	c, ids, vecs := newTestServer(t, 60)
	queries := [][]float32{vecs[3], vecs[11], vecs[40]}
	results, err := c.BatchSearch(context.Background(), []string{"Post.content_emb"}, queries, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{ids[3], ids[11], ids[40]}
	for i, res := range results {
		if res.Error != "" {
			t.Fatalf("query %d: %s", i, res.Error)
		}
		if len(res.Hits) != 2 || res.Hits[0].ID != want[i] {
			t.Fatalf("query %d: hits = %+v", i, res.Hits)
		}
		if res.SnapshotTID == 0 {
			t.Fatalf("query %d: no snapshot TID", i)
		}
	}
}

func TestSearchBadDimIsPerQueryError(t *testing.T) {
	c, _, vecs := newTestServer(t, 20)
	// The transport call succeeds; the per-query error carries the
	// dimension mismatch.
	_, err := c.Search(context.Background(), []string{"Post.content_emb"}, []float32{1, 2}, 3, 0)
	if err == nil || !strings.Contains(err.Error(), "dimension") {
		t.Fatalf("err = %v", err)
	}
	// In a batch, a bad query must not fail its neighbors.
	results, err := c.BatchSearch(context.Background(), []string{"Post.content_emb"},
		[][]float32{vecs[0], {1, 2}}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Error != "" || len(results[0].Hits) != 3 {
		t.Fatalf("good query = %+v", results[0])
	}
	if !strings.Contains(results[1].Error, "dimension") {
		t.Fatalf("bad query error = %q", results[1].Error)
	}
}

func TestSearchUnknownAttr(t *testing.T) {
	c, _, vecs := newTestServer(t, 20)
	_, err := c.Search(context.Background(), []string{"Post.nope"}, vecs[0], 3, 0)
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err = %v", err)
	}
	_, err = c.Search(context.Background(), []string{"Nope.attr"}, vecs[0], 3, 0)
	if err == nil {
		t.Fatal("unknown vertex type accepted")
	}
}

func TestSearchRequestValidation(t *testing.T) {
	c, _, vecs := newTestServer(t, 10)
	post := func(body string) int {
		resp, err := http.Post(c.BaseURL+"/search", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"attrs":["Post.content_emb"],"k":3}`); code != http.StatusBadRequest {
		t.Fatalf("neither query nor queries: %d", code)
	}
	if code := post(`{"attrs":["Post.content_emb"],"query":[1],"queries":[[1]],"k":3}`); code != http.StatusBadRequest {
		t.Fatalf("both query and queries: %d", code)
	}
	if code := post(`not json`); code != http.StatusBadRequest {
		t.Fatalf("bad json: %d", code)
	}
	// k <= 0 must be a 400, not an empty 200 that reads as "no matches".
	if code := post(`{"attrs":["Post.content_emb"],"query":[1,0,0,0,0,0,0,0],"k":0}`); code != http.StatusBadRequest {
		t.Fatalf("k=0: %d", code)
	}
	if code := post(`{"attrs":["Post.content_emb"],"query":[1,0,0,0,0,0,0,0],"k":-3}`); code != http.StatusBadRequest {
		t.Fatalf("k=-3: %d", code)
	}
	// GET on a POST endpoint.
	resp, err := http.Get(c.BaseURL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /search: %d", resp.StatusCode)
	}
	_ = vecs
}

func TestRangeOverHTTP(t *testing.T) {
	c, ids, vecs := newTestServer(t, 40)
	hits, err := c.RangeSearch(context.Background(), "Post.content_emb", vecs[3], 1e-4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].ID != ids[3] {
		t.Fatalf("range = %+v", hits)
	}
}

func TestRangeRequestValidation(t *testing.T) {
	c, _, _ := newTestServer(t, 5)
	post := func(body string) int {
		resp, err := http.Post(c.BaseURL+"/range", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"attr":"Post.content_emb","threshold":1}`); code != http.StatusBadRequest {
		t.Fatalf("missing query: %d", code)
	}
	// Negative thresholds are legal: inner-product metrics encode
	// "dot >= x" as a negative distance bound.
	if code := post(`{"attr":"Post.content_emb","query":[1,0,0,0,0,0,0,0],"threshold":-1}`); code != http.StatusOK {
		t.Fatalf("negative threshold rejected: %d", code)
	}
}

func TestCheckpointEndpoint(t *testing.T) {
	// A non-durable DB answers 400.
	c, _, _ := newTestServer(t, 3)
	if _, err := c.Checkpoint(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "Durability") {
		t.Fatalf("checkpoint on non-durable server: %v", err)
	}

	// A durable DB checkpoints, truncates the WAL, and recovers.
	dir := t.TempDir()
	db, err := tigervector.Open(tigervector.Config{
		SegmentSize: 32, Seed: 1, DataDir: dir, Durability: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(testDDL); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(db, Options{}).Handler())
	cl := client.New(ts.URL)
	ctx := context.Background()
	id, err := cl.AddVertex(ctx, "Post", map[string]any{"id": 1, "language": "en", "length": 3})
	if err != nil {
		t.Fatal(err)
	}
	vec := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	if err := cl.Upsert(ctx, "Post", "content_emb", id, vec); err != nil {
		t.Fatal(err)
	}
	info, err := cl.Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.TID == 0 || info.GraphBytes == 0 || info.WALTruncatedBytes == 0 {
		t.Fatalf("checkpoint info = %+v", info)
	}
	ts.Close()
	closeDB(t, db)

	db2, err := tigervector.Open(tigervector.Config{
		SegmentSize: 32, Seed: 1, DataDir: dir, Durability: true})
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, db2)
	hits, err := db2.VectorSearch([]string{"Post.content_emb"}, vec, 1, nil)
	if err != nil || len(hits) != 1 || hits[0].ID != id {
		t.Fatalf("post-checkpoint recovery search = %+v, %v", hits, err)
	}
}

func TestUpsertDeleteLifecycleOverHTTP(t *testing.T) {
	c, ids, _ := newTestServer(t, 20)
	ctx := context.Background()
	nv := []float32{9, 9, 9, 9, 9, 9, 9, 9}
	if err := c.Upsert(ctx, "Post", "content_emb", ids[0], nv); err != nil {
		t.Fatal(err)
	}
	// Committed upsert is visible to a search that starts after it.
	hits, err := c.Search(ctx, []string{"Post.content_emb"}, nv, 1, 0)
	if err != nil || len(hits) != 1 || hits[0].ID != ids[0] || hits[0].Distance != 0 {
		t.Fatalf("post-upsert search = %+v, %v", hits, err)
	}
	// Upsert by primary key resolves to the same vertex.
	id, err := c.UpsertByKey(ctx, "Post", "content_emb", 5, nv)
	if err != nil || id != ids[5] {
		t.Fatalf("UpsertByKey = %d, %v", id, err)
	}
	if err := c.Delete(ctx, "Post", "content_emb", ids[0]); err != nil {
		t.Fatal(err)
	}
	hits, err = c.Search(ctx, []string{"Post.content_emb"}, nv, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 1 && hits[0].ID == ids[0] {
		t.Fatal("deleted embedding still served")
	}
	// Whole-vertex delete.
	if err := c.DeleteVertex(ctx, "Post", ids[1]); err != nil {
		t.Fatal(err)
	}
	// Errors: unknown key, wrong dimension.
	if _, err := c.UpsertByKey(ctx, "Post", "content_emb", 9999, nv); err == nil {
		t.Fatal("unknown key accepted")
	}
	if err := c.Upsert(ctx, "Post", "content_emb", ids[2], []float32{1}); err == nil {
		t.Fatal("wrong dim accepted")
	}
}

func TestGSQLOverHTTP(t *testing.T) {
	c, ids, vecs := newTestServer(t, 50)
	ctx := context.Background()
	err := c.Exec(ctx, `
CREATE QUERY eng (LIST<FLOAT> qv, INT k) {
  R = SELECT s FROM (s:Post) WHERE s.language = "English"
      ORDER BY VECTOR_DIST(s.content_emb, qv) LIMIT k;
  PRINT R;
}`)
	if err != nil {
		t.Fatal(err)
	}
	// k arrives as a JSON number (float64) and must be coerced to INT.
	q := make([]any, 8)
	for i, f := range vecs[1] {
		q[i] = f
	}
	resp, err := c.Run(ctx, "eng", map[string]any{"qv": q, "k": 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Outputs) != 1 || resp.Outputs[0].Name != "R" {
		t.Fatalf("outputs = %+v", resp.Outputs)
	}
	var set struct {
		Type string   `json:"type"`
		IDs  []uint64 `json:"ids"`
	}
	if err := json.Unmarshal(resp.Outputs[0].Value, &set); err != nil {
		t.Fatal(err)
	}
	if set.Type != "Post" || len(set.IDs) != 5 {
		t.Fatalf("set = %+v", set)
	}
	if resp.Stats.EndToEndSeconds <= 0 {
		t.Fatalf("stats = %+v", resp.Stats)
	}
	// Errors: unknown query, bad source, exec+run together.
	if _, err := c.Run(ctx, "nope", nil); err == nil {
		t.Fatal("unknown query accepted")
	}
	if err := c.Exec(ctx, "CREATE GARBAGE"); err == nil {
		t.Fatal("bad GSQL accepted")
	}
	body := `{"exec":"x","run":"y"}`
	httpResp, err := http.Post(c.BaseURL+"/gsql", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	_ = httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("exec+run: %d", httpResp.StatusCode)
	}
	_ = ids
}

func TestStatsEndpoint(t *testing.T) {
	c, _, vecs := newTestServer(t, 30)
	ctx := context.Background()
	if _, err := c.Search(ctx, []string{"Post.content_emb"}, vecs[0], 2, 0); err != nil {
		t.Fatal(err)
	}
	raw, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests.Search != 1 || st.Requests.Stats != 1 {
		t.Fatalf("counters = %+v", st.Requests)
	}
	if st.DB.VisibleTID == 0 || len(st.DB.Stores) != 1 || st.DB.Pool.Workers <= 0 {
		t.Fatalf("db stats = %+v", st.DB)
	}
	if st.UptimeSeconds <= 0 {
		t.Fatalf("uptime = %v", st.UptimeSeconds)
	}
}

// TestConcurrentRequests hammers /search and /upsert from many
// goroutines at once; run under -race this covers the whole HTTP ->
// pool -> engine path for data races.
func TestConcurrentRequests(t *testing.T) {
	c, ids, vecs := newTestServer(t, 64)
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if w%4 == 0 {
					v := []float32{float32(w), float32(i), 0, 0, 0, 0, 0, 0}
					if err := c.Upsert(ctx, "Post", "content_emb", ids[32+w], v); err != nil {
						errCh <- err
						return
					}
					continue
				}
				hits, err := c.Search(ctx, []string{"Post.content_emb"}, vecs[(w*10+i)%32], 3, 0)
				if err != nil {
					errCh <- err
					return
				}
				if len(hits) != 3 {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

func TestGracefulShutdown(t *testing.T) {
	db, err := tigervector.Open(tigervector.Config{SegmentSize: 32, Seed: 1, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, db)
	srv := New(db, Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(l) }()
	// Wait until the server answers, proving Serve is running.
	c := client.New("http://" + l.Addr().String())
	for i := 0; ; i++ {
		if _, err := c.Stats(context.Background()); err == nil {
			break
		} else if i > 100 {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Shutdown must terminate Serve with http.ErrServerClosed.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v", err)
	}
	// A Serve after Shutdown fails fast.
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(l2); err != http.ErrServerClosed {
		t.Fatalf("Serve after Shutdown returned %v", err)
	}
}

func TestSearchWithFilterAndPin(t *testing.T) {
	c, ids, vecs := newTestServer(t, 60)
	ctx := context.Background()

	// Wire-level pre-filter: only the first 5 posts qualify.
	resp, err := c.SearchWith(ctx, client.SearchRequest{
		Attrs: []string{"Post.content_emb"}, Query: vecs[9], K: 3,
		Filter: &client.Filter{Type: "Post", IDs: ids[:5]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Error != "" {
		t.Fatalf("results = %+v", resp.Results)
	}
	for _, h := range resp.Results[0].Hits {
		if h.ID >= ids[5] {
			t.Fatalf("filter ignored: hit %d", h.ID)
		}
	}
	pin := resp.Results[0].SnapshotTID
	if pin == 0 {
		t.Fatal("snapshot_tid missing")
	}
	// The executed filter plan rides on the wire: 5 candidates is under
	// the brute-force floor, and the measured selectivity is reported.
	plan := resp.Results[0].Plan
	if plan == nil {
		t.Fatal("filtered search response carries no plan")
	}
	if plan.Candidates != 5 || plan.BruteSegments == 0 || plan.Selectivity <= 0 {
		t.Fatalf("wire plan = %+v", plan)
	}

	// A pinned follow-up runs at exactly the pinned snapshot.
	resp2, err := c.SearchWith(ctx, client.SearchRequest{
		Attrs: []string{"Post.content_emb"}, Query: vecs[9], K: 3,
		Filter: &client.Filter{Type: "Post", IDs: ids[:5]}, AtTID: pin,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Results[0].SnapshotTID != pin {
		t.Fatalf("pin ignored: ran at %d, want %d", resp2.Results[0].SnapshotTID, pin)
	}
	if len(resp2.Results[0].Hits) != len(resp.Results[0].Hits) {
		t.Fatalf("pinned read differs: %+v vs %+v", resp2.Results[0].Hits, resp.Results[0].Hits)
	}

	// Range requests carry the same fields.
	rresp, err := c.RangeWith(ctx, client.RangeRequest{
		Attr: "Post.content_emb", Query: vecs[9], Threshold: 1e6,
		Filter: &client.Filter{Type: "Post", IDs: ids[:5]}, AtTID: pin,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rresp.Results[0].Hits); got != 5 {
		t.Fatalf("filtered range returned %d hits, want 5", got)
	}
	if rresp.Results[0].Plan == nil {
		t.Fatal("filtered range response carries no plan")
	}

	// Unfiltered searches carry no plan on the wire.
	plainResp, err := c.SearchWith(ctx, client.SearchRequest{
		Attrs: []string{"Post.content_emb"}, Query: vecs[9], K: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plainResp.Results[0].Plan != nil {
		t.Fatalf("unfiltered response has plan %+v", plainResp.Results[0].Plan)
	}
}

func TestSearchTimeoutWire(t *testing.T) {
	c, _, vecs := newTestServer(t, 30)
	// A sub-millisecond server-side deadline: the request must answer
	// with a per-query deadline error, not hang or 500. timeout_ms=1 is
	// the smallest wire value; combined with a queued goroutine
	// handoff it reliably expires before the scan finishes on a corpus
	// this size — and if the scan does win the race, hits are valid
	// too, so accept either but never a transport error.
	resp, err := c.SearchWith(context.Background(), client.SearchRequest{
		Attrs: []string{"Post.content_emb"}, Query: vecs[0], K: 3, TimeoutMS: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := resp.Results[0]
	if r.Error != "" && !strings.Contains(r.Error, "deadline") {
		t.Fatalf("unexpected error: %q", r.Error)
	}
}
