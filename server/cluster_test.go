package server

// End-to-end cluster tests over real HTTP: a WAL-shipping replica served
// by tgvserve's handler (write rejection, pinned reads, honest staleness
// in /stats), and the scatter/gather router checked differentially
// against a single-node oracle holding the union corpus — exact
// distances, exact tie order at the k cutoff — plus the kill-a-shard
// degradation contract.

import (
	"context"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	tigervector "repro"
	"repro/client"
	"repro/internal/cluster"
)

// clusterDDL extends the Post schema with graph types for edge-routing
// coverage.
const clusterDDL = testDDL + `
CREATE VERTEX Person (id INT PRIMARY KEY, name STRING, cid INT);
CREATE DIRECTED EDGE hasCreator (FROM Post, TO Person);
`

// durableServer boots one durable tgvserve handler over a fresh DB.
func durableServer(t *testing.T, opts Options) (*tigervector.DB, *httptest.Server) {
	t.Helper()
	db, err := tigervector.Open(tigervector.Config{
		SegmentSize: 32, Seed: 1, DataDir: t.TempDir(), Durability: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { closeDB(t, db) })
	ts := httptest.NewServer(New(db, opts).Handler())
	t.Cleanup(ts.Close)
	return db, ts
}

func TestReplicaOverHTTP(t *testing.T) {
	ctx := context.Background()
	primaryDB, primarySrv := durableServer(t, Options{})
	pc := client.New(primarySrv.URL)
	if err := pc.Exec(ctx, testDDL); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	var vecs [][]float32
	for i := 0; i < 12; i++ {
		id, err := pc.AddVertex(ctx, "Post", map[string]any{
			"id": int64(i), "language": "en", "length": int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		v := make([]float32, 8)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		vecs = append(vecs, v)
		if err := pc.Upsert(ctx, "Post", "content_emb", id, v); err != nil {
			t.Fatal(err)
		}
	}

	// The primary advertises its replication position.
	st, err := pc.ReplState(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Durable || st.LastCommittedTID != primaryDB.VisibleTID() || st.CatalogLen == 0 {
		t.Fatalf("repl state = %+v", st)
	}

	// Boot the replica: its own durable DB, a Replicator, and a handler
	// in replica mode.
	replicaDB, err := tigervector.Open(tigervector.Config{
		SegmentSize: 32, Seed: 1, DataDir: t.TempDir(), Durability: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { closeDB(t, replicaDB) })
	rep := &cluster.Replicator{Primary: primarySrv.URL, Target: replicaDB}
	if _, err := rep.PullOnce(ctx); err != nil {
		t.Fatal(err)
	}
	replicaSrv := httptest.NewServer(New(replicaDB, Options{
		Replica:     true,
		Replication: func() *client.ReplicationStats { return rep.Stats() },
	}).Handler())
	t.Cleanup(replicaSrv.Close)
	rc := client.New(replicaSrv.URL)

	// Every write path answers 421 Misdirected Request.
	writes := map[string]func() error{
		"vertex": func() error {
			_, err := rc.AddVertex(ctx, "Post", map[string]any{"id": int64(99)})
			return err
		},
		"edge":   func() error { return rc.AddEdge(ctx, "knows", 0, 1) },
		"upsert": func() error { return rc.Upsert(ctx, "Post", "content_emb", 0, vecs[0]) },
		"delete": func() error { return rc.Delete(ctx, "Post", "content_emb", 0) },
		"gsql":   func() error { return rc.Exec(ctx, "CREATE VERTEX X (id INT PRIMARY KEY);") },
	}
	for name, write := range writes {
		if err := write(); err == nil || !strings.Contains(err.Error(), "421") {
			t.Fatalf("%s on replica: %v, want 421", name, err)
		}
	}

	// Reads converge: same hits at the replica's applied TID, and pinned
	// (at_tid) reads are byte-identical to the primary's at that TID.
	tids, err := rc.TIDState(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tids.LastCommittedTID != primaryDB.VisibleTID() {
		t.Fatalf("replica at tid %d, primary at %d", tids.LastCommittedTID, primaryDB.VisibleTID())
	}
	pin := tids.LastCommittedTID - 3
	req := client.SearchRequest{Attrs: []string{"Post.content_emb"}, Query: vecs[4], K: 5, AtTID: pin}
	pres, err := pc.SearchWith(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := rc.SearchWith(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(pres.Results[0].Hits) == 0 {
		t.Fatal("pinned search returned nothing")
	}
	for i, ph := range pres.Results[0].Hits {
		rh := rres.Results[0].Hits[i]
		if ph != rh {
			t.Fatalf("pinned hit %d diverged: primary %+v, replica %+v", i, ph, rh)
		}
	}
	pget, err := pc.GetEmbedding(ctx, client.GetRequest{Type: "Post", Attr: "content_emb", Key: int64(4), AtTID: pin})
	if err != nil {
		t.Fatal(err)
	}
	rget, err := rc.GetEmbedding(ctx, client.GetRequest{Type: "Post", Attr: "content_emb", Key: int64(4), AtTID: pin})
	if err != nil {
		t.Fatal(err)
	}
	if pget.Found != rget.Found || len(pget.Vector) != len(rget.Vector) {
		t.Fatalf("pinned get diverged: %+v vs %+v", pget, rget)
	}
	for i := range pget.Vector {
		if pget.Vector[i] != rget.Vector[i] {
			t.Fatalf("pinned get vector[%d] diverged", i)
		}
	}

	// /stats carries the honest-staleness block.
	repl, err := rc.Replication(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if repl == nil || repl.AppliedTID != primaryDB.VisibleTID() || repl.ReplicationLag != 0 {
		t.Fatalf("replication stats = %+v", repl)
	}
	if prepl, err := pc.Replication(ctx); err != nil || prepl != nil {
		t.Fatalf("primary advertises replication block %+v (%v)", prepl, err)
	}

	// New primary commits raise the measured lag until the next pull.
	if err := pc.Upsert(ctx, "Post", "content_emb", 0, vecs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := rep.PullOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if repl, err = rc.Replication(ctx); err != nil || repl.ReplicationLag != 0 || repl.RecordsApplied == 0 {
		t.Fatalf("post-pull replication stats = %+v (%v)", repl, err)
	}
}

func TestReplPullRequiresDurability(t *testing.T) {
	db, err := tigervector.Open(tigervector.Config{SegmentSize: 32, Seed: 1, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { closeDB(t, db) })
	ts := httptest.NewServer(New(db, Options{}).Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/repl/pull?since=0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("pull on non-durable primary = %d, want 501", resp.StatusCode)
	}
}

// testCluster is a 3-shard router deployment plus a single-node oracle
// holding the union corpus.
type testCluster struct {
	n         int
	shardSrvs []*httptest.Server
	router    *httptest.Server
	rc        *client.Client // talks to the router
	oc        *client.Client // talks to the oracle
	gidOf     map[int64]uint64
	oidOf     map[int64]uint64 // oracle ids, loaded in gid order
	keyOfGid  map[uint64]int64
	keyOfOid  map[uint64]int64
	vecOf     map[int64][]float32
}

// newTestCluster boots n shards behind a router, loads keys 0..m-1
// through the router, then loads the oracle with the same keys in
// gid-ascending order — making oracle ids order-isomorphic to gids, so
// single-node tie-breaking (by id) and router tie-breaking (by gid)
// order identically.
func newTestCluster(t *testing.T, n, m int, opts cluster.RouterOptions) *testCluster {
	t.Helper()
	ctx := context.Background()
	tc := &testCluster{
		n:        n,
		gidOf:    map[int64]uint64{},
		oidOf:    map[int64]uint64{},
		keyOfGid: map[uint64]int64{},
		keyOfOid: map[uint64]int64{},
		vecOf:    map[int64][]float32{},
	}
	var specs []cluster.ShardSpec
	for i := 0; i < n; i++ {
		db, err := tigervector.Open(tigervector.Config{SegmentSize: 16, Seed: 1, DataDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { closeDB(t, db) })
		ts := httptest.NewServer(New(db, Options{}).Handler())
		t.Cleanup(ts.Close)
		tc.shardSrvs = append(tc.shardSrvs, ts)
		specs = append(specs, cluster.ShardSpec{Primary: ts.URL})
	}
	router, err := cluster.NewRouter(specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	tc.router = httptest.NewServer(router)
	t.Cleanup(tc.router.Close)
	tc.rc = client.New(tc.router.URL)

	// Schema broadcast through the router reaches every shard.
	if err := tc.rc.Exec(ctx, clusterDDL); err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(11))
	for k := 0; k < m; k++ {
		key := int64(k)
		v := make([]float32, 8)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		// Every 5th key duplicates the previous vector, planting exact
		// distance ties across shard boundaries.
		if k%5 == 4 {
			copy(v, tc.vecOf[key-1])
		}
		tc.vecOf[key] = v
		gid, err := tc.rc.AddVertex(ctx, "Post", map[string]any{
			"id": key, "language": "en", "length": key})
		if err != nil {
			t.Fatal(err)
		}
		tc.gidOf[key] = gid
		tc.keyOfGid[gid] = key
		if err := tc.rc.Upsert(ctx, "Post", "content_emb", gid, v); err != nil {
			t.Fatal(err)
		}
	}

	// The oracle: one node, union corpus, keys inserted in gid order.
	odb, err := tigervector.Open(tigervector.Config{SegmentSize: 16, Seed: 1, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { closeDB(t, odb) })
	ots := httptest.NewServer(New(odb, Options{}).Handler())
	t.Cleanup(ots.Close)
	tc.oc = client.New(ots.URL)
	if err := tc.oc.Exec(ctx, clusterDDL); err != nil {
		t.Fatal(err)
	}
	keys := make([]int64, 0, m)
	for key := range tc.gidOf {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(a, b int) bool { return tc.gidOf[keys[a]] < tc.gidOf[keys[b]] })
	for _, key := range keys {
		oid, err := tc.oc.AddVertex(ctx, "Post", map[string]any{
			"id": key, "language": "en", "length": key})
		if err != nil {
			t.Fatal(err)
		}
		tc.oidOf[key] = oid
		tc.keyOfOid[oid] = key
		if err := tc.oc.Upsert(ctx, "Post", "content_emb", oid, tc.vecOf[key]); err != nil {
			t.Fatal(err)
		}
	}
	return tc
}

// assertSameHits compares router hits against oracle hits: identical
// length, bitwise-identical distances, and the same vertices in the same
// order under the gid↔oracle-id order isomorphism.
func (tc *testCluster) assertSameHits(t *testing.T, what string, routed, oracle []client.Hit) {
	t.Helper()
	if len(routed) != len(oracle) {
		t.Fatalf("%s: router %d hits, oracle %d", what, len(routed), len(oracle))
	}
	for i := range routed {
		rh, oh := routed[i], oracle[i]
		if math.Float32bits(rh.Distance) != math.Float32bits(oh.Distance) {
			t.Fatalf("%s hit %d: distance %v != oracle %v", what, i, rh.Distance, oh.Distance)
		}
		rkey, ok := tc.keyOfGid[rh.ID]
		if !ok {
			t.Fatalf("%s hit %d: unknown gid %d", what, i, rh.ID)
		}
		if okey := tc.keyOfOid[oh.ID]; rkey != okey {
			t.Fatalf("%s hit %d: key %d != oracle key %d", what, i, rkey, okey)
		}
	}
}

func TestRouterDifferentialAgainstOracle(t *testing.T) {
	ctx := context.Background()
	tc := newTestCluster(t, 3, 60, cluster.RouterOptions{})
	r := rand.New(rand.NewSource(23))
	queries := make([][]float32, 6)
	for qi := range queries {
		q := make([]float32, 8)
		for j := range q {
			q[j] = float32(r.NormFloat64())
		}
		queries[qi] = q
	}
	// A query placed exactly on a duplicated vector makes the tie at the
	// cutoff real, not hypothetical.
	queries[5] = tc.vecOf[3]

	// Top-k, batched, high ef so both sides answer exactly.
	req := client.SearchRequest{Attrs: []string{"Post.content_emb"}, Queries: queries, K: 7, Ef: 256}
	routed, err := tc.rc.SearchWith(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := tc.oc.SearchWith(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if routed.Partial || len(routed.FailedShards) != 0 {
		t.Fatalf("healthy cluster answered partial: %+v", routed.FailedShards)
	}
	if len(routed.ShardTIDs) != 3 {
		t.Fatalf("shard_tids = %v, want 3 entries", routed.ShardTIDs)
	}
	for qi := range queries {
		if routed.Results[qi].SnapshotTID != 0 {
			t.Fatalf("merged result carries snapshot_tid %d, want 0 (per-shard TIDs are incomparable)",
				routed.Results[qi].SnapshotTID)
		}
		tc.assertSameHits(t, "topk", routed.Results[qi].Hits, oracle.Results[qi].Hits)
	}

	// Range: merged without truncation.
	rreq := client.RangeRequest{Attr: "Post.content_emb", Query: queries[0], Threshold: 12, Ef: 256}
	rrouted, err := tc.rc.RangeWith(ctx, rreq)
	if err != nil {
		t.Fatal(err)
	}
	roracle, err := tc.oc.RangeWith(ctx, rreq)
	if err != nil {
		t.Fatal(err)
	}
	if len(roracle.Results[0].Hits) == 0 {
		t.Fatal("range threshold admitted nothing; test is vacuous")
	}
	tc.assertSameHits(t, "range", rrouted.Results[0].Hits, roracle.Results[0].Hits)

	// Filtered search: a gid filter splits into per-shard local filters.
	var fgids []uint64
	var foids []uint64
	for key := int64(0); key < 20; key += 2 {
		fgids = append(fgids, tc.gidOf[key])
		foids = append(foids, tc.oidOf[key])
	}
	freq := req
	freq.Queries = queries[:2]
	freq.Filter = &client.Filter{Type: "Post", IDs: fgids}
	frouted, err := tc.rc.SearchWith(ctx, freq)
	if err != nil {
		t.Fatal(err)
	}
	oreq := freq
	oreq.Filter = &client.Filter{Type: "Post", IDs: foids}
	foracle, err := tc.oc.SearchWith(ctx, oreq)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range freq.Queries {
		tc.assertSameHits(t, "filtered", frouted.Results[qi].Hits, foracle.Results[qi].Hits)
	}

	// Point reads by key and by gid, byte-compared against the oracle.
	for _, key := range []int64{0, 7, 31, 59} {
		rget, err := tc.rc.GetEmbedding(ctx, client.GetRequest{Type: "Post", Attr: "content_emb", Key: key})
		if err != nil {
			t.Fatal(err)
		}
		oget, err := tc.oc.GetEmbedding(ctx, client.GetRequest{Type: "Post", Attr: "content_emb", Key: key})
		if err != nil {
			t.Fatal(err)
		}
		if !rget.Found || !oget.Found || rget.ID != tc.gidOf[key] || rget.SnapshotTID != 0 {
			t.Fatalf("get key %d: router %+v, oracle %+v", key, rget, oget)
		}
		for i := range rget.Vector {
			if math.Float32bits(rget.Vector[i]) != math.Float32bits(oget.Vector[i]) {
				t.Fatalf("get key %d: vector[%d] diverged", key, i)
			}
		}
		gid := tc.gidOf[key]
		byGID, err := tc.rc.GetEmbedding(ctx, client.GetRequest{Type: "Post", Attr: "content_emb", ID: &gid})
		if err != nil || byGID.ID != gid {
			t.Fatalf("get by gid %d: %+v (%v)", gid, byGID, err)
		}
	}

	// Deletes route to the owning shard and disappear from merged results.
	delKey := tc.keyOfGid[routed.Results[0].Hits[0].ID]
	if err := tc.rc.Delete(ctx, "Post", "content_emb", tc.gidOf[delKey]); err != nil {
		t.Fatal(err)
	}
	if err := tc.oc.Delete(ctx, "Post", "content_emb", tc.oidOf[delKey]); err != nil {
		t.Fatal(err)
	}
	postDel, err := tc.rc.SearchWith(ctx, client.SearchRequest{
		Attrs: []string{"Post.content_emb"}, Query: queries[0], K: 7, Ef: 256})
	if err != nil {
		t.Fatal(err)
	}
	postDelO, err := tc.oc.SearchWith(ctx, client.SearchRequest{
		Attrs: []string{"Post.content_emb"}, Query: queries[0], K: 7, Ef: 256})
	if err != nil {
		t.Fatal(err)
	}
	tc.assertSameHits(t, "post-delete", postDel.Results[0].Hits, postDelO.Results[0].Hits)
}

func TestRouterEdgePlacement(t *testing.T) {
	ctx := context.Background()
	tc := newTestCluster(t, 3, 12, cluster.RouterOptions{})
	// Person keys hash like Post keys (placement is type-blind over the
	// key value), so Person k collocates with Post k.
	personGID := map[int64]uint64{}
	for k := int64(0); k < 12; k++ {
		gid, err := tc.rc.AddVertex(ctx, "Person", map[string]any{"id": k, "name": "p", "cid": k % 2})
		if err != nil {
			t.Fatal(err)
		}
		personGID[k] = gid
		if personGID[k]%3 != tc.gidOf[k]%3 {
			t.Fatalf("Person %d on shard %d, Post %d on shard %d: same key must collocate",
				k, personGID[k]%3, k, tc.gidOf[k]%3)
		}
	}
	// Same shard: accepted. Different shards: refused whole, not
	// half-inserted.
	if err := tc.rc.AddEdge(ctx, "hasCreator", tc.gidOf[3], personGID[3]); err != nil {
		t.Fatalf("same-shard edge: %v", err)
	}
	var k1, k2 int64 = -1, -1
	for k := int64(0); k < 12 && k2 < 0; k++ {
		if tc.gidOf[k]%3 != tc.gidOf[0]%3 {
			k2 = k
		} else {
			k1 = k
		}
	}
	if k1 < 0 || k2 < 0 {
		t.Skip("all keys hashed to one shard")
	}
	err := tc.rc.AddEdge(ctx, "hasCreator", tc.gidOf[k1], personGID[k2])
	if err == nil || !strings.Contains(err.Error(), "different shards") {
		t.Fatalf("cross-shard edge: %v, want refusal", err)
	}
}

func TestRouterValidation(t *testing.T) {
	ctx := context.Background()
	tc := newTestCluster(t, 2, 4, cluster.RouterOptions{})
	q := make([]float32, 8)
	cases := map[string]func() error{
		"at_tid refused": func() error {
			_, err := tc.rc.SearchWith(ctx, client.SearchRequest{
				Attrs: []string{"Post.content_emb"}, Query: q, K: 1, AtTID: 3})
			return err
		},
		"range at_tid refused": func() error {
			_, err := tc.rc.RangeWith(ctx, client.RangeRequest{
				Attr: "Post.content_emb", Query: q, Threshold: 1, AtTID: 3})
			return err
		},
		"gsql run refused": func() error {
			_, err := tc.rc.Run(ctx, "anything", nil)
			return err
		},
		"k >= 1": func() error {
			_, err := tc.rc.SearchWith(ctx, client.SearchRequest{
				Attrs: []string{"Post.content_emb"}, Query: q})
			return err
		},
		"vertex needs key attr": func() error {
			_, err := tc.rc.AddVertex(ctx, "Post", map[string]any{"language": "en"})
			return err
		},
	}
	for name, call := range cases {
		if err := call(); err == nil || !strings.Contains(err.Error(), "400") {
			t.Errorf("%s: err = %v, want 400", name, err)
		}
	}
}

func TestRouterKillShardDegradesThenRecovers(t *testing.T) {
	ctx := context.Background()
	tc := newTestCluster(t, 3, 45, cluster.RouterOptions{
		ShardTimeout: 2 * time.Second,
		Cooldown:     100 * time.Millisecond,
	})
	q := make([]float32, 8)
	q[0] = 1

	// SIGKILL equivalent: the shard's listener dies mid-deployment.
	dead := tc.shardSrvs[1]
	deadAddr := dead.Listener.Addr().String()
	dead.CloseClientConnections()
	dead.Close()

	start := time.Now()
	resp, err := tc.rc.SearchWith(ctx, client.SearchRequest{
		Attrs: []string{"Post.content_emb"}, Query: q, K: 10, Ef: 256})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("degraded answer took %v, want within the shard deadline", elapsed)
	}
	if !resp.Partial {
		t.Fatal("response not marked partial with a dead shard")
	}
	if len(resp.FailedShards) != 1 || !strings.HasPrefix(resp.FailedShards[0], "shard1") {
		t.Fatalf("failed_shards = %v, want [shard1...]", resp.FailedShards)
	}
	if len(resp.Results[0].Hits) == 0 {
		t.Fatal("surviving shards contributed no hits")
	}
	for _, h := range resp.Results[0].Hits {
		if h.ID%3 == 1 {
			t.Fatalf("hit gid %d belongs to the dead shard", h.ID)
		}
	}

	// The shard comes back on the same address; after the cooldown the
	// router routes to it again and answers whole.
	l, err := net.Listen("tcp", deadAddr)
	if err != nil {
		t.Fatalf("rebind %s: %v", deadAddr, err)
	}
	// A closed http.Server cannot serve again; the revived shard is a new
	// server over the same (still alive) handler and DB.
	revived := &httptest.Server{Listener: l, Config: &http.Server{Handler: dead.Config.Handler}}
	revived.Start()
	t.Cleanup(revived.Close)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err = tc.rc.SearchWith(ctx, client.SearchRequest{
			Attrs: []string{"Post.content_emb"}, Query: q, K: 10, Ef: 256})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Partial {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router still partial after recovery: %v", resp.FailedShards)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if len(resp.ShardTIDs) != 3 {
		t.Fatalf("recovered shard_tids = %v", resp.ShardTIDs)
	}
}

func TestRouterSingleShardIsIdentity(t *testing.T) {
	ctx := context.Background()
	tc := newTestCluster(t, 1, 10, cluster.RouterOptions{})
	// With N == 1, gid == local id: router and direct shard access agree.
	sc := client.New(tc.shardSrvs[0].URL)
	for key, gid := range tc.gidOf {
		direct, err := sc.GetEmbedding(ctx, client.GetRequest{Type: "Post", Attr: "content_emb", Key: key})
		if err != nil {
			t.Fatal(err)
		}
		if direct.ID != gid {
			t.Fatalf("key %d: gid %d != shard-local id %d", key, gid, direct.ID)
		}
	}
}
