package server

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/client"
)

// TestStatsObservesFilteredBurst drives a burst of filtered searches
// end-to-end through the HTTP server and asserts the /stats snapshot
// actually observed them: the filter-plan counters advance by at least
// the burst size and the per-store ActiveQueries gauge drains back to
// zero once the burst completes. This is the contract the serving
// harness's plan-mix drift sampling (cmd/tgvbench -exp serve) depends
// on — if these counters stop moving, the benchmark reports garbage
// silently.
func TestStatsObservesFilteredBurst(t *testing.T) {
	c, ids, vecs := newTestServer(t, 128)
	ctx := context.Background()

	fetchStats := func() Stats {
		t.Helper()
		raw, err := c.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		var st Stats
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("decoding /stats: %v", err)
		}
		return st
	}
	before := fetchStats()

	// Every 4th post qualifies: 25% selectivity, enough to make the
	// planner pick a real strategy for every segment it scans.
	var admitted []uint64
	for i := 0; i < len(ids); i += 4 {
		admitted = append(admitted, ids[i])
	}
	const burst = 32
	var wg sync.WaitGroup
	errCh := make(chan error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.SearchWith(ctx, client.SearchRequest{
				Attrs:  []string{"Post.content_emb"},
				Query:  vecs[i%len(vecs)],
				K:      5,
				Ef:     64,
				Filter: &client.Filter{Type: "Post", IDs: admitted},
			})
			if err != nil {
				errCh <- err
				return
			}
			r := resp.Results[0]
			if r.Error != "" {
				errCh <- fmt.Errorf("filtered search %d: %s", i, r.Error)
				return
			}
			if r.Plan == nil {
				errCh <- fmt.Errorf("filtered search %d returned no plan", i)
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	after := fetchStats()
	fp, fp0 := after.DB.FilterPlans, before.DB.FilterPlans
	if got := fp.FilteredSearches - fp0.FilteredSearches; got < burst {
		t.Errorf("filtered_searches advanced by %d, want >= %d", got, burst)
	}
	segDelta := (fp.BruteSegments + fp.BitmapSegments + fp.PostSegments + fp.SkippedSegments) -
		(fp0.BruteSegments + fp0.BitmapSegments + fp0.PostSegments + fp0.SkippedSegments)
	if segDelta <= 0 {
		t.Errorf("no per-strategy segment counter moved: before %+v after %+v", fp0, fp)
	}
	if after.Requests.Search-before.Requests.Search < burst {
		t.Errorf("request counter saw %d searches, want >= %d",
			after.Requests.Search-before.Requests.Search, burst)
	}

	// The ActiveQueries gauge must drain: a snapshot registration leak
	// here pins the vacuum forever. Poll briefly — the HTTP handler may
	// return before the server-side bookkeeping fully settles.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := fetchStats()
		busy := int64(0)
		for _, store := range st.DB.Stores {
			busy += int64(store.ActiveQueries)
		}
		busy += st.DB.Pool.InFlight
		if busy == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queries never drained: %d still registered", busy)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
