package tigervector

import (
	"encoding/csv"
	"fmt"
	"io"
	"runtime"

	"repro/internal/graph"
	"repro/internal/txn"
)

// This file implements the loading-job surface of paper Sec. 4.1:
// vertices and edges load from CSV; embedding attributes load from
// separate files whose vector column is split on a separator (the
// split(content_emb, ":") idiom), or in bulk from in-memory slices.

// LoadVerticesCSV inserts one vertex per CSV row. cols maps CSV columns
// to attribute names (empty string skips a column). Returns vertex ids in
// row order. With Durability enabled the whole load is one WAL record:
// parse errors reject the file before anything is inserted, and a crash
// during the load recovers to "no rows".
func (db *DB) LoadVerticesCSV(vertexType string, cols []string, r io.Reader) ([]uint64, error) {
	db.cpMu.RLock()
	defer db.cpMu.RUnlock()
	rows, err := graph.ParseVertexRowsCSV(db.graph.Schema(), vertexType, cols, r)
	if err != nil {
		return nil, err
	}
	ids := make([]uint64, len(rows))
	tx := db.mgr.Begin()
	for i, row := range rows {
		i := i
		raw := make(map[string]any, len(row))
		for k, v := range row {
			raw[k] = v
		}
		conv, recAttrs, err := normalizeAttrs(raw)
		if err != nil {
			return nil, fmt.Errorf("tigervector: csv row %d: %w", i+1, err)
		}
		rec := &txn.GraphOp{Kind: txn.OpAddVertex, Type: vertexType, Attrs: recAttrs}
		tx.StageGraphOp(rec, func() error {
			id, err := db.graph.AddVertex(vertexType, conv)
			ids[i] = id
			rec.ID = id
			return err
		})
	}
	if _, err := tx.Commit(); err != nil {
		return nil, err
	}
	return ids, nil
}

// LoadEdgesCSV inserts edges from (fromKey, toKey) primary-key rows. With
// Durability enabled the whole load is one WAL record.
func (db *DB) LoadEdgesCSV(edgeType string, r io.Reader) (int, error) {
	db.cpMu.RLock()
	defer db.cpMu.RUnlock()
	sch := db.graph.Schema()
	rows, err := graph.ParseEdgeKeyRowsCSV(sch, edgeType, r)
	if err != nil {
		return 0, err
	}
	et, _ := sch.EdgeType(edgeType)
	tx := db.mgr.Begin()
	for i, row := range rows {
		from, ok := db.graph.VertexByKey(et.From, row[0])
		if !ok {
			return 0, fmt.Errorf("tigervector: csv line %d: no %s vertex with key %v", i+1, et.From, row[0])
		}
		to, ok := db.graph.VertexByKey(et.To, row[1])
		if !ok {
			return 0, fmt.Errorf("tigervector: csv line %d: no %s vertex with key %v", i+1, et.To, row[1])
		}
		tx.StageGraphOp(
			&txn.GraphOp{Kind: txn.OpAddEdge, Type: edgeType, ID: from, To: to},
			func() error { return db.graph.AddEdge(edgeType, from, to) })
	}
	if _, err := tx.Commit(); err != nil {
		return 0, err
	}
	return len(rows), nil
}

// LoadEmbeddingsCSV loads an embedding attribute from rows of
// (primaryKey, vector) where the vector column is split on sep. Rows are
// applied transactionally (one commit per batch of 1024).
func (db *DB) LoadEmbeddingsCSV(vertexType, attr string, sep string, r io.Reader) (int, error) {
	db.cpMu.RLock()
	defer db.cpMu.RUnlock()
	vt, ok := db.graph.Schema().VertexType(vertexType)
	if !ok {
		return 0, fmt.Errorf("tigervector: unknown vertex type %q", vertexType)
	}
	ea, ok := vt.Embedding(attr)
	if !ok {
		return 0, fmt.Errorf("tigervector: %s has no embedding attribute %q", vertexType, attr)
	}
	pkAttr, ok := vt.Attr(vt.PrimaryKey)
	if !ok {
		return 0, fmt.Errorf("tigervector: %s has no primary key", vertexType)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	n, line := 0, 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, fmt.Errorf("tigervector: csv line %d: %w", line+1, err)
		}
		line++
		if len(rec) < 2 {
			return n, fmt.Errorf("tigervector: csv line %d has %d fields, want 2", line, len(rec))
		}
		key, err := graph.ParseValue(pkAttr.Type, rec[0])
		if err != nil {
			return n, err
		}
		id, ok := db.graph.VertexByKey(vertexType, key)
		if !ok {
			return n, fmt.Errorf("tigervector: csv line %d: no %s vertex with key %v", line, vertexType, key)
		}
		vec, err := graph.ParseVector(rec[1], sep)
		if err != nil {
			return n, fmt.Errorf("tigervector: csv line %d: %w", line, err)
		}
		if len(vec) != ea.Dim {
			return n, fmt.Errorf("tigervector: csv line %d: vector has dim %d, want %d", line, len(vec), ea.Dim)
		}
		if err := db.upsertEmbedding(vertexType, attr, id, vec); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// BulkLoadEmbeddings installs embeddings for many vertices at once and
// builds the per-segment indexes in parallel. It is the fast initial-load
// path (no delta store involved) and requires that no vector updates for
// this attribute are pending.
//
// Bulk-loaded vectors bypass the WAL: with Durability enabled, call
// Checkpoint() after the initial load to make them restart-safe (the
// recommended load sequence; per-row LoadEmbeddingsCSV and
// UpsertEmbedding are WAL-covered and need no checkpoint). The
// checkpoint also snapshots the freshly built segment indexes, so the
// next Open deserializes them instead of repeating the index build.
func (db *DB) BulkLoadEmbeddings(vertexType, attr string, ids []uint64, vecs [][]float32) error {
	db.cpMu.RLock()
	defer db.cpMu.RUnlock()
	if err := db.checkEmbedding(vertexType, attr, -1); err != nil {
		return err
	}
	store, ok := db.svc.Store(vertexType + "." + attr)
	if !ok {
		return fmt.Errorf("tigervector: embedding store %s.%s not registered", vertexType, attr)
	}
	for i, vec := range vecs {
		if j := firstNonFinite(vec); j >= 0 {
			return fmt.Errorf("tigervector: bulk-load vector %d component %d is %v; vector components must be finite", i, j, vec[j])
		}
	}
	tx := db.mgr.Begin()
	tid, err := tx.Commit() // reserve a TID for the bulk watermark
	if err != nil {
		return err
	}
	return store.BulkLoad(ids, vecs, runtime.GOMAXPROCS(0), tid)
}
