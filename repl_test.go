package tigervector

// Integration tests of the DB's replication surface against real WALs:
// WritePull's checkpoint-boundary semantics, a pull racing a live
// concurrent Checkpoint (the WAL-rotation race), a torn on-disk tail
// mid-pull, and full primary→replica convergence including byte-level
// WAL/catalog identity, snapshot-pinned reads, and bootstrap from a
// checkpoint snapshot.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/txn"
)

// pullFrames decodes a WritePull stream into record TIDs and the end
// frame (nil when the stream was aborted without one).
func pullFrames(t *testing.T, b []byte) (tids []uint64, end *cluster.PullEnd) {
	t.Helper()
	r := bytes.NewReader(b)
	for {
		kind, payload, err := cluster.ReadFrame(r)
		if err == io.EOF {
			return tids, end
		}
		if err != nil {
			t.Fatalf("read frame: %v", err)
		}
		switch kind {
		case cluster.FrameMeta:
		case cluster.FrameRecord:
			tid, _, _, err := txn.ReadRecord(bytes.NewReader(payload))
			if err != nil {
				t.Fatalf("decode shipped record: %v", err)
			}
			tids = append(tids, uint64(tid))
		case cluster.FrameEnd:
			end = &cluster.PullEnd{}
			if err := json.Unmarshal(payload, end); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestReplPullSinceAroundCheckpoint(t *testing.T) {
	db, err := Open(durableCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, db)
	postIDs := loadFixture(t, db)
	info, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cp := info.TID
	if got := db.CheckpointTID(); got != cp {
		t.Fatalf("CheckpointTID = %d, want %d", got, cp)
	}
	// Two post-checkpoint commits: the incremental window.
	for i := 0; i < 2; i++ {
		vec := make([]float32, 8)
		vec[0] = float32(100 + i)
		if err := db.UpsertEmbedding("Post", "content_emb", postIDs[i], vec); err != nil {
			t.Fatal(err)
		}
	}

	// since == lastCpTID: the oldest servable position — everything
	// missing is still in the (truncated) WAL.
	var buf bytes.Buffer
	if err := cluster.WritePull(&buf, db, cp, db.CatalogLen()); err != nil {
		t.Fatal(err)
	}
	tids, end := pullFrames(t, buf.Bytes())
	if want := []uint64{cp + 1, cp + 2}; fmt.Sprint(tids) != fmt.Sprint(want) {
		t.Fatalf("since=cp shipped %v, want %v", tids, want)
	}
	if end == nil || end.LastTID != cp+2 {
		t.Fatalf("end = %+v", end)
	}

	// since one past lastCpTID: strictly newer, also servable.
	buf.Reset()
	if err := cluster.WritePull(&buf, db, cp+1, db.CatalogLen()); err != nil {
		t.Fatal(err)
	}
	if tids, _ = pullFrames(t, buf.Bytes()); fmt.Sprint(tids) != fmt.Sprint([]uint64{cp + 2}) {
		t.Fatalf("since=cp+1 shipped %v, want [%d]", tids, cp+2)
	}

	// since one below lastCpTID: that record is gone from the WAL.
	buf.Reset()
	if err := cluster.WritePull(&buf, db, cp-1, 0); !errors.Is(err, cluster.ErrSnapshotRequired) {
		t.Fatalf("since=cp-1: %v, want ErrSnapshotRequired", err)
	}
	if buf.Len() != 0 {
		t.Fatal("bytes written before the snapshot-required verdict")
	}
}

func TestReplPullTornTailOnDisk(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, db)
	loadFixture(t, db)
	visible := db.VisibleTID()

	// A torn append: garbage (a half-written commit) at the WAL tail.
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x57, 0x56, 0x47, 0x54, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := cluster.WritePull(&buf, db, 0, db.CatalogLen()); err != nil {
		t.Fatal(err)
	}
	tids, end := pullFrames(t, buf.Bytes())
	if uint64(len(tids)) != visible {
		t.Fatalf("shipped %d records, want the %d whole ones", len(tids), visible)
	}
	if end == nil || end.LastTID != visible {
		t.Fatalf("end = %+v, want clean end at %d", end, visible)
	}
}

// rotatingSource wraps a DB so that the WAL is checkpoint-truncated (and
// written past) while a pull stream is mid-read: the deterministic
// version of a checkpoint racing /repl/pull.
type rotatingSource struct {
	*DB
	once   sync.Once
	rotate func()
}

func (s *rotatingSource) OpenWAL() (io.ReadCloser, error) {
	rc, err := s.DB.OpenWAL()
	if err != nil {
		return nil, err
	}
	return &rotatingReader{rc: rc, s: s}, nil
}

type rotatingReader struct {
	rc io.ReadCloser
	s  *rotatingSource
}

func (r *rotatingReader) Read(p []byte) (int, error) {
	n, err := r.rc.Read(p)
	// After the stream's first chunk is buffered, rotate the log under
	// the open file descriptor.
	r.s.once.Do(r.s.rotate)
	return n, err
}

func (r *rotatingReader) Close() error { return r.rc.Close() }

func TestReplPullRacingConcurrentCheckpoint(t *testing.T) {
	db, err := Open(durableCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, db)
	postIDs := loadFixture(t, db)
	// Grow the WAL past one bufio chunk (64 KiB) so the pull needs more
	// than one read and the rotation lands mid-stream.
	vec := make([]float32, 8)
	for i := 0; i < 900; i++ {
		vec[0] = float32(i)
		if err := db.UpsertEmbedding("Post", "content_emb", postIDs[i%len(postIDs)], vec); err != nil {
			t.Fatal(err)
		}
	}
	before := db.VisibleTID()

	src := &rotatingSource{DB: db}
	src.rotate = func() {
		if _, err := db.Checkpoint(); err != nil {
			t.Errorf("racing checkpoint: %v", err)
		}
		vec[0] = -1
		if err := db.UpsertEmbedding("Post", "content_emb", postIDs[0], vec); err != nil {
			t.Errorf("post-rotation write: %v", err)
		}
	}

	var buf bytes.Buffer
	pullErr := cluster.WritePull(&buf, src, 0, 0)
	tids, end := pullFrames(t, buf.Bytes())
	// Whatever the race produced, the shipped prefix must be dense from 1
	// and honestly terminated: a clean end frame at the last shipped
	// record, or an abort with no end frame at all.
	for i, tid := range tids {
		if tid != uint64(i+1) {
			t.Fatalf("shipped tid %d at position %d: not dense", tid, i)
		}
	}
	if pullErr == nil {
		if end == nil || end.LastTID != uint64(len(tids)) {
			t.Fatalf("clean pull: end = %+v after %d records", end, len(tids))
		}
	} else if end != nil {
		t.Fatalf("failed pull (%v) still wrote an end frame %+v", pullErr, end)
	}
	if uint64(len(tids)) > before {
		t.Fatalf("shipped %d records: past the pre-rotation cap %d", len(tids), before)
	}
	// The replica's retry lands below the new checkpoint and is told to
	// bootstrap — the WAL horizon moved past its position.
	var retry bytes.Buffer
	if err := cluster.WritePull(&retry, db, uint64(len(tids)), 0); !errors.Is(err, cluster.ErrSnapshotRequired) {
		t.Fatalf("retry after rotation: %v, want ErrSnapshotRequired", err)
	}
}

// replServer exposes a DB's pull and file endpoints the way tgvserve
// does, for driving the real Replicator/Bootstrap clients in-process.
func replServer(t *testing.T, db *DB) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/repl/pull", func(w http.ResponseWriter, r *http.Request) {
		var since uint64
		var catalog int64
		_, _ = fmt.Sscan(r.URL.Query().Get("since"), &since)
		_, _ = fmt.Sscan(r.URL.Query().Get("catalog"), &catalog)
		if err := cluster.WritePull(w, db, since, catalog); errors.Is(err, cluster.ErrSnapshotRequired) {
			w.WriteHeader(http.StatusConflict)
		}
	})
	mux.HandleFunc("/repl/file", func(w http.ResponseWriter, r *http.Request) {
		f, err := db.OpenReplFile(r.URL.Query().Get("name"))
		if err != nil {
			status := http.StatusBadRequest
			if os.IsNotExist(err) {
				status = http.StatusNotFound
			}
			w.WriteHeader(status)
			return
		}
		defer func() { _ = f.Close() }()
		_, _ = io.Copy(w, f)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// assertSameFile compares two data-dir files byte for byte.
func assertSameFile(t *testing.T, what, a, b string) {
	t.Helper()
	ab, errA := os.ReadFile(a)
	bb, errB := os.ReadFile(b)
	if errA != nil || errB != nil {
		t.Fatalf("read %s: %v / %v", what, errA, errB)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("%s diverged: %d vs %d bytes", what, len(ab), len(bb))
	}
}

func TestReplicaConvergesByteIdentical(t *testing.T) {
	primaryDir, replicaDir := t.TempDir(), t.TempDir()
	primary, err := Open(durableCfg(primaryDir))
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, primary)
	postIDs := loadFixture(t, primary)
	ts := replServer(t, primary)

	replica, err := Open(durableCfg(replicaDir))
	if err != nil {
		t.Fatal(err)
	}
	rep := &cluster.Replicator{Primary: ts.URL, Target: replica}
	if _, err := rep.PullOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, want := replica.VisibleTID(), primary.VisibleTID(); got != want {
		t.Fatalf("replica tid %d, want %d", got, want)
	}
	// The replica re-applied every record through its own commit path and
	// re-appended it to its own log: both logs and both catalogs must be
	// byte-identical, not just equivalent.
	assertSameFile(t, "wal", filepath.Join(primaryDir, "wal.log"), filepath.Join(replicaDir, "wal.log"))
	assertSameFile(t, "catalog", filepath.Join(primaryDir, "catalog.gsql"), filepath.Join(replicaDir, "catalog.gsql"))
	checkFixture(t, replica, postIDs)

	// Pinned reads: at every TID in the pulled window, the replica's
	// snapshot answers exactly like the primary's.
	pinTID := primary.VisibleTID() - 2
	query := make([]float32, 8)
	query[0] = 6
	for _, db := range []*DB{primary, replica} {
		res, err := db.Search(context.Background(), Request{
			Attrs: []string{"Post.content_emb"}, Query: query, K: 3, AtTID: pinTID})
		if err != nil || res.Err != nil {
			t.Fatalf("pinned search: %v / %v", err, res.Err)
		}
		if res.SnapshotTID != pinTID {
			t.Fatalf("pinned search ran at %d, want %d", res.SnapshotTID, pinTID)
		}
	}
	presPinned, _ := primary.Search(context.Background(), Request{Attrs: []string{"Post.content_emb"}, Query: query, K: 5, AtTID: pinTID})
	rresPinned, _ := replica.Search(context.Background(), Request{Attrs: []string{"Post.content_emb"}, Query: query, K: 5, AtTID: pinTID})
	if fmt.Sprintf("%+v", presPinned.Hits) != fmt.Sprintf("%+v", rresPinned.Hits) {
		t.Fatalf("pinned hits diverged:\nprimary %+v\nreplica %+v", presPinned.Hits, rresPinned.Hits)
	}

	// Incremental rounds: keep writing, keep pulling, stay converged.
	for round := 0; round < 3; round++ {
		vec := make([]float32, 8)
		vec[0] = float32(50 + round)
		if err := primary.UpsertEmbedding("Post", "content_emb", postIDs[round], vec); err != nil {
			t.Fatal(err)
		}
		if _, err := rep.PullOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if fmt.Sprintf("%+v", searchProbe(t, primary)) != fmt.Sprintf("%+v", searchProbe(t, replica)) {
		t.Fatal("probe searches diverged after incremental rounds")
	}

	// A replica restarts from its own WAL like any primary.
	closeDB(t, replica)
	reopened, err := Open(durableCfg(replicaDir))
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, reopened)
	if got, want := reopened.VisibleTID(), primary.VisibleTID(); got != want {
		t.Fatalf("reopened replica tid %d, want %d", got, want)
	}
	if fmt.Sprintf("%+v", searchProbe(t, primary)) != fmt.Sprintf("%+v", searchProbe(t, reopened)) {
		t.Fatal("probe searches diverged after replica restart")
	}
}

func TestReplicaBootstrapFromSnapshot(t *testing.T) {
	primary, err := Open(durableCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, primary)
	postIDs := loadFixture(t, primary)
	if _, err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint delta a bootstrapped replica must still pull.
	vec := make([]float32, 8)
	vec[0] = 77
	if err := primary.UpsertEmbedding("Post", "content_emb", postIDs[2], vec); err != nil {
		t.Fatal(err)
	}
	ts := replServer(t, primary)

	// A fresh replica (tid 0) is behind the checkpoint: pull refuses and
	// demands a snapshot.
	replicaDir := t.TempDir()
	replica, err := Open(durableCfg(replicaDir))
	if err != nil {
		t.Fatal(err)
	}
	rep := &cluster.Replicator{Primary: ts.URL, Target: replica}
	if _, err := rep.PullOnce(context.Background()); !errors.Is(err, cluster.ErrSnapshotRequired) {
		t.Fatalf("fresh replica pull: %v, want ErrSnapshotRequired", err)
	}

	// Re-seed: wipe, bootstrap the snapshot files, reopen, pull the delta.
	closeDB(t, replica)
	if err := os.RemoveAll(replicaDir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(replicaDir, 0o755); err != nil {
		t.Fatal(err)
	}
	tid, err := cluster.Bootstrap(context.Background(), nil, ts.URL, replicaDir)
	if err != nil {
		t.Fatal(err)
	}
	if tid != primary.CheckpointTID() {
		t.Fatalf("bootstrap at tid %d, want checkpoint %d", tid, primary.CheckpointTID())
	}
	seeded, err := Open(durableCfg(replicaDir))
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, seeded)
	if got := seeded.VisibleTID(); got != tid {
		t.Fatalf("seeded replica at tid %d, want %d", got, tid)
	}
	// The recovered manifest TID must hold the replica's own WAL-shipping
	// horizon, so it could itself serve chained pulls.
	if got := seeded.CheckpointTID(); got != tid {
		t.Fatalf("seeded CheckpointTID = %d, want %d", got, tid)
	}
	rep.Target = seeded
	if n, err := rep.PullOnce(context.Background()); err != nil || n == 0 {
		t.Fatalf("post-bootstrap pull applied %d (%v), want the delta", n, err)
	}
	if got, want := seeded.VisibleTID(), primary.VisibleTID(); got != want {
		t.Fatalf("seeded replica tid %d, want %d", got, want)
	}
	checkFixtureAfterUpsert := func(db *DB) []SearchHit {
		hits, err := db.VectorSearch([]string{"Post.content_emb"}, vec, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		return hits
	}
	p, r := checkFixtureAfterUpsert(primary), checkFixtureAfterUpsert(seeded)
	if fmt.Sprintf("%+v", p) != fmt.Sprintf("%+v", r) {
		t.Fatalf("post-bootstrap search diverged: %+v vs %+v", p, r)
	}
}

func TestApplyRecordGuards(t *testing.T) {
	db, err := Open(durableCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, db)
	if err := db.Exec(testDDL); err != nil {
		t.Fatal(err)
	}
	next := db.VisibleTID() + 1

	// Out-of-order records are refused before anything is staged.
	op := txn.GraphOp{Kind: txn.OpAddVertex, Type: "Post", ID: 0,
		Attrs: []txn.GraphAttr{{Name: "id", Value: int64(1)}}}
	if err := db.ApplyRecord(next+1, nil, []txn.GraphOp{op}); err == nil {
		t.Fatal("gap tid accepted")
	}
	// A record racing ahead of its DDL must fail cleanly (pre-validation,
	// nothing staged) so the next pull can retry it after the catalog
	// chunk lands.
	bad := txn.GraphOp{Kind: txn.OpAddVertex, Type: "NoSuchType", ID: 0}
	if err := db.ApplyRecord(next, nil, []txn.GraphOp{bad}); err == nil {
		t.Fatal("unknown vertex type accepted")
	}
	if err := db.ApplyRecord(next, []txn.StagedVector{{AttrKey: "Post.nope", ID: 0, Vec: make([]float32, 8)}}, nil); err == nil {
		t.Fatal("unknown embedding attr accepted")
	}
	// The failures above must not have consumed the TID: the valid record
	// still applies at the same position.
	if err := db.ApplyRecord(next, nil, []txn.GraphOp{op}); err != nil {
		t.Fatalf("valid record after rejected ones: %v", err)
	}
	if got := db.VisibleTID(); got != next {
		t.Fatalf("tid %d after apply, want %d", got, next)
	}
}
