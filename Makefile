GO ?= go

.PHONY: build test bench vet lint race recovery-test cluster-test bench-restart bench-filtered bench-kernels bench-serving bench-serving-smoke bench-serving-cluster bench-ingest bench-ingest-smoke fmt-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: the five tgvlint analyzers
# (internal/analysis) over the whole module, plus govulncheck when the
# toolchain has it. tgvlint is built into bin/ so repeat runs and CI
# reuse the build cache; suppressions require a justified //lint:ignore
# (see docs/ARCHITECTURE.md, "Enforced invariants").
lint:
	@mkdir -p bin
	$(GO) build -o bin/tgvlint ./cmd/tgvlint
	./bin/tgvlint ./...
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; fi

# Fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Standard test leg; the race detector runs as its own `make race` leg
# of the CI matrix.
test: vet lint
	$(GO) test -timeout 20m ./...

# Race-detector leg. The experiment-plumbing tests in internal/bench
# are slow under -race; give the run headroom beyond the default 10m.
race:
	$(GO) test -race -timeout 45m ./...

# End-to-end crash recovery: start tgvserve with durability, load data
# over HTTP, SIGKILL it (leaving a torn WAL tail), restart, assert
# identical results; then checkpoint, verify the WAL truncates, and
# crash-restart once more.
recovery-test:
	./scripts/recovery_test.sh

# End-to-end cluster test: one durable primary + two WAL-shipping read
# replicas behind the scatter/gather router — replica convergence, 421
# write rejection, SIGKILL degradation (partial:true naming the shard),
# recovery through the surviving endpoints, and snapshot bootstrap of a
# fresh replica after a checkpoint has truncated the primary's WAL.
cluster-test:
	./scripts/cluster_test.sh

# Paper-figure regeneration plus the serving throughput comparison.
# TGV_SCALE=1 runs the full laptop-scale experiments.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Restart benchmark: snapshot fast-path Open (deserialize per-segment
# index snapshots) vs cold Open (rebuild indexes from vectors), averaged
# over 5 reopens each and emitted as BENCH_restart.json.
bench-restart:
	TGV_BENCH_OUT=BENCH_restart.json $(GO) test -run xxx -bench BenchmarkOpenColdVsSnapshot -benchtime 5x .

# Filtered-search planner benchmark: sweeps filter selectivity
# (0.1%..100%) across the three plan strategies, the automatic planner
# and the pre-planner callback baseline, emitted as BENCH_filtered.json.
bench-filtered:
	TGV_BENCH_FILTERED_OUT=BENCH_filtered.json $(GO) test -run xxx -bench BenchmarkFilteredSearch -benchtime 10x .

# Distance-kernel benchmark: scalar per-pair scoring (pre-flat baseline)
# vs blocked batch kernels vs int8 (SQ8) quantized scoring at d=32/128/768,
# plus quantized recall@10 with and without the exact re-scoring pass,
# emitted as BENCH_kernels.json (schema_version 1).
bench-kernels:
	TGV_BENCH_KERNELS_OUT=BENCH_kernels.json $(GO) test -run xxx -bench BenchmarkDistanceKernels -benchtime 20x .

# Serving-mode recall/SLO harness: boots a tgvserve in-process, loads a
# seeded dataset over HTTP and runs the mixed scenario suite (closed-loop,
# fixed-QPS open-loop, filtered selectivity bands, upsert+search mix,
# pooled batch), emitting BENCH_serving.json: recall@k vs the brute-force
# oracle, p50/p95/p99 latency, achieved vs target QPS, error counts and
# filter plan-mix drift. Target an already-running server with
# `go run ./cmd/tgvbench -exp serve -addr host:port`.
bench-serving:
	$(GO) run ./cmd/tgvbench -exp serve -out BENCH_serving.json

# CI smoke variant: small corpus, ~1s per scenario, same report schema.
bench-serving-smoke:
	$(GO) run ./cmd/tgvbench -exp serve -n 1500 -dim 32 -queries 40 -k 10 \
		-duration 1s -qps 200 -clients 4 -out BENCH_serving.json

# Cluster scaling variant: the same suite swept across shard counts —
# a single-node no-router baseline (0), then 1 and 3 shards behind the
# scatter/gather router — each count a fresh in-process cluster. Rows
# carry a "shards" field; comparing 0→1 isolates router overhead,
# 1→3 the partitioning gain. In-process shards share the host's cores
# (the report records host_cpus): shard-parallel speedup needs at least
# one core per shard, so on a 1-core CI box the 1→3 delta is pure
# router+fan-out overhead.
bench-serving-cluster:
	$(GO) run ./cmd/tgvbench -exp serve -cluster -shards 0,1,3 \
		-n 1500 -dim 32 -queries 40 -k 10 -duration 1s -qps 200 -clients 4 \
		-out BENCH_serving.json

# Sustained-ingest write-path benchmark: an idle search baseline plus a
# writer-count sweep of full-speed durable re-upserts through WAL group
# commit, each stage on a fresh seeded DB, with a paced search probe
# measuring recall@k and latency throughout. BENCH_ingest.json carries
# per-stage write QPS, fsyncs/commit (the coalescing win), backpressure
# throttle counters, adaptive-vacuum trigger deltas and a derived
# scaling block (peak writers vs one writer). The report records
# host_cpus: on a 1-core box full-speed ingest saturates the CPU, so
# search service time inflates with writer count even though recall
# stays exact — judge p99 deltas against the core count.
bench-ingest:
	$(GO) run ./cmd/tgvbench -exp ingest -out BENCH_ingest.json

# CI smoke variant: small corpus, short stages, same report schema.
bench-ingest-smoke:
	$(GO) run ./cmd/tgvbench -exp ingest -n 2048 -dim 16 -queries 32 -k 10 \
		-duration 500ms -writers 1,8 -out BENCH_ingest.json
