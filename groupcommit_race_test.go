package tigervector

// Race-mode coverage for WAL group commit against the rest of the
// durability surface: many committers coalescing into shared fsyncs
// while Checkpoint rotates the WAL under them and replica pulls stream
// it. The assertions are about ordering and honesty — every successful
// pull ships a dense TID prefix with a truthful end frame — but the
// real check is `go test -race`, which the CI race leg runs over this
// file: the leader/follower handoff publishes batches via the manager's
// condition variable, and any unsynchronized peek at shared commit
// state is a detector hit here.

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
)

func TestGroupCommitRacesCheckpointAndReplicaPulls(t *testing.T) {
	cfg := durableCfg(t.TempDir())
	cfg.GroupCommit = GroupCommitConfig{Enabled: true}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, db)
	postIDs := loadFixture(t, db)

	const committers = 4
	const writesEach = 30
	var wg sync.WaitGroup
	var writersLive atomic.Int64
	writersLive.Store(committers)
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writersLive.Add(-1)
			vec := make([]float32, 8)
			for i := 0; i < writesEach; i++ {
				vec[0] = float32(w*writesEach + i)
				if err := db.UpsertEmbedding("Post", "content_emb", postIDs[(w+i)%len(postIDs)], vec); err != nil {
					t.Errorf("committer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Checkpoint rotates the WAL while commits are in flight; each
	// rotation moves the oldest servable pull position.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for writersLive.Load() > 0 {
			if _, err := db.Checkpoint(); err != nil {
				t.Errorf("racing checkpoint: %v", err)
				return
			}
		}
	}()

	// Replica pulls stream the WAL mid-race. A pull that loses the race
	// with a rotation may abort or be told to bootstrap; one that wins
	// must ship a dense TID run with a truthful end frame.
	wg.Add(1)
	pulls, denied := 0, 0
	go func() {
		defer wg.Done()
		var buf bytes.Buffer
		for writersLive.Load() > 0 {
			since := db.CheckpointTID()
			buf.Reset()
			err := cluster.WritePull(&buf, db, since, db.CatalogLen())
			if errors.Is(err, cluster.ErrSnapshotRequired) {
				denied++ // a rotation moved the horizon past `since`
				continue
			}
			tids, end := pullFrames(t, buf.Bytes())
			for i, tid := range tids {
				if tid != since+uint64(i)+1 {
					t.Errorf("pull since %d: tid %d at position %d, not dense", since, tid, i)
					return
				}
			}
			if err == nil {
				if end == nil || (len(tids) > 0 && end.LastTID != tids[len(tids)-1]) {
					t.Errorf("clean pull since %d: end %+v after %d records", since, end, len(tids))
					return
				}
				pulls++
			} else if end != nil {
				t.Errorf("failed pull (%v) still wrote an end frame %+v", err, end)
				return
			}
		}
	}()
	wg.Wait()

	if pulls == 0 {
		t.Error("no replica pull completed cleanly during the race")
	}
	t.Logf("race done: %d clean pulls, %d bootstrap denials", pulls, denied)

	// The group path must have seen every embedding commit, coalescing at
	// least some of them (exact ratios are timing-dependent; the invariant
	// is fsyncs never exceed commits and nothing bypassed the group).
	gs := db.Stats().GroupCommit
	if !gs.Enabled {
		t.Fatal("group commit not reported enabled")
	}
	if gs.Commits < committers*writesEach {
		t.Fatalf("group path saw %d commits, want >= %d", gs.Commits, committers*writesEach)
	}
	if gs.Fsyncs <= 0 || gs.Fsyncs > gs.Commits {
		t.Fatalf("implausible fsync count %d for %d commits", gs.Fsyncs, gs.Commits)
	}

	// Quiesced: a final pull from the last checkpoint must ship exactly
	// the tail and end at the visible TID.
	var buf bytes.Buffer
	since := db.CheckpointTID()
	if err := cluster.WritePull(&buf, db, since, db.CatalogLen()); err != nil {
		t.Fatalf("final pull: %v", err)
	}
	tids, end := pullFrames(t, buf.Bytes())
	if end == nil || end.LastTID != db.VisibleTID() {
		t.Fatalf("final pull end %+v, want LastTID %d", end, db.VisibleTID())
	}
	if uint64(len(tids)) != db.VisibleTID()-since {
		t.Fatalf("final pull shipped %d records, want %d", len(tids), db.VisibleTID()-since)
	}
}
