package tigervector

// Durability round-trip tests: write → crash (reopen without Close) →
// recover, torn-tail WAL repair, checkpoint-then-replay equivalence, and
// graph survival across restarts.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// durableCfg opens a crash-test DB: durable, deterministic, no background
// vacuum so on-disk state is exactly what the WAL and checkpoints say.
func durableCfg(dir string) Config {
	return Config{SegmentSize: 32, Seed: 1, DataDir: dir, Durability: true, DisableVacuum: true}
}

// loadFixture populates db with people, posts, edges and embeddings.
func loadFixture(t *testing.T, db *DB) (postIDs []uint64) {
	t.Helper()
	if err := db.Exec(testDDL); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := db.AddVertex("Person", map[string]any{"id": int64(i), "name": "p", "cid": int64(i % 2)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		id, err := db.AddVertex("Post", map[string]any{"id": int64(i), "language": "en", "length": int64(10 * i)})
		if err != nil {
			t.Fatal(err)
		}
		postIDs = append(postIDs, id)
		vec := make([]float32, 8)
		vec[0] = float32(i)
		if err := db.UpsertEmbedding("Post", "content_emb", id, vec); err != nil {
			t.Fatal(err)
		}
	}
	p0, _ := db.VertexByKey("Person", int64(0))
	p1, _ := db.VertexByKey("Person", int64(1))
	if err := db.AddEdge("knows", p0, p1); err != nil {
		t.Fatal(err)
	}
	if err := db.AddEdge("hasCreator", postIDs[3], p1); err != nil {
		t.Fatal(err)
	}
	return postIDs
}

// checkFixture asserts the fixture state (graph + vectors) is intact.
func checkFixture(t *testing.T, db *DB, postIDs []uint64) {
	t.Helper()
	if n := db.NumVertices("Person"); n != 5 {
		t.Fatalf("persons = %d", n)
	}
	if n := db.NumEdges("knows"); n != 1 {
		t.Fatalf("knows edges = %d", n)
	}
	p1, ok := db.VertexByKey("Person", int64(1))
	if !ok {
		t.Fatal("Person 1 lost")
	}
	if got := db.InNeighbors("hasCreator", p1); len(got) != 1 || got[0] != postIDs[3] {
		t.Fatalf("hasCreator in(p1) = %v", got)
	}
	v, err := db.Attr("Post", postIDs[4], "length")
	if err != nil || v.(int64) != 40 {
		t.Fatalf("Post[4].length = %v, %v", v, err)
	}
	query := make([]float32, 8)
	query[0] = 6
	hits, err := db.VectorSearch([]string{"Post.content_emb"}, query, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].ID != postIDs[6] || hits[0].Distance != 0 {
		t.Fatalf("search = %+v", hits)
	}
}

func TestGraphSurvivesCrashRestart(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	postIDs := loadFixture(t, db)
	// Mutations beyond plain inserts: attribute write, vertex delete.
	if err := db.SetAttr("Post", postIDs[2], "language", "fr"); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteVertex("Post", postIDs[9]); err != nil {
		t.Fatal(err)
	}
	// Crash: reopen without Close. Nothing was merged or checkpointed;
	// the whole state must come back from catalog + WAL replay alone.
	db2, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, db2)
	checkFixture(t, db2, postIDs)
	if v, _ := db2.Attr("Post", postIDs[2], "language"); v.(string) != "fr" {
		t.Fatalf("SetAttr lost: %v", v)
	}
	if db2.NumVertices("Post") != 9 { // 10 inserted, 1 tombstoned
		t.Fatalf("alive posts = %d", db2.NumVertices("Post"))
	}
	if _, ok := db2.GetEmbedding("Post", "content_emb", postIDs[9]); ok {
		t.Fatal("deleted vertex's embedding resurrected")
	}
	// Writes continue after recovery, and ids stay stable.
	id, err := db2.AddVertex("Post", map[string]any{"id": int64(100), "language": "de"})
	if err != nil || id != 10 {
		t.Fatalf("post-recovery insert = %d, %v", id, err)
	}
}

func TestRejectedInsertLeavesNoTrace(t *testing.T) {
	// A rejected AddVertex must not consume a vertex slot (dense id
	// allocation is what makes WAL replay deterministic) or partially
	// update an upsert target — otherwise recovery diverges and Open
	// fails forever.
	dir := t.TempDir()
	db, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(testDDL); err != nil {
		t.Fatal(err)
	}
	id0, err := db.AddVertex("Post", map[string]any{"id": int64(0), "language": "en"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddVertex("Post", map[string]any{"id": int64(1), "bogus": int64(9)}); err == nil {
		t.Fatal("insert with unknown attribute accepted")
	}
	// Rejected upsert: existing vertex, one good attr, one bad.
	if _, err := db.AddVertex("Post", map[string]any{"id": int64(0), "language": "fr", "bogus": int64(9)}); err == nil {
		t.Fatal("upsert with unknown attribute accepted")
	}
	if v, _ := db.Attr("Post", id0, "language"); v.(string) != "en" {
		t.Fatalf("aborted upsert mutated attribute: %v", v)
	}
	id2, err := db.AddVertex("Post", map[string]any{"id": int64(2), "language": "de"})
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id0+1 {
		t.Fatalf("rejected insert consumed a slot: next id %d after %d", id2, id0)
	}
	// And the log replays cleanly.
	db2, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatalf("reopen after rejected inserts: %v", err)
	}
	defer closeDB(t, db2)
	if rid, ok := db2.VertexByKey("Post", int64(2)); !ok || rid != id2 {
		t.Fatalf("replayed vertex = %d, %v", rid, ok)
	}
}

func TestTornWALTailRepairedOnOpen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	postIDs := loadFixture(t, db)
	closeDB(t, db)

	// Simulate a crash mid-append: the tail of the log is a half-written
	// record (a prefix of a real one, so the magic is valid).
	wal := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, data...), data[:25]...)
	if err := os.WriteFile(wal, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatalf("open with torn wal tail: %v", err)
	}
	defer closeDB(t, db2)
	checkFixture(t, db2, postIDs)
	if got := db2.Stats().RecoveryTornBytes; got != 25 {
		t.Fatalf("RecoveryTornBytes = %d, want 25", got)
	}
	// The file was repaired in place, byte-identical to the clean log.
	repaired, err := os.ReadFile(wal)
	if err != nil || len(repaired) != len(data) {
		t.Fatalf("repaired wal = %d bytes, want %d (%v)", len(repaired), len(data), err)
	}
}

func TestCheckpointTruncatesWALAndRecovers(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	postIDs := loadFixture(t, db)
	wal := filepath.Join(dir, "wal.log")
	before, _ := os.Stat(wal)
	if before.Size() == 0 {
		t.Fatal("wal empty before checkpoint")
	}

	info, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info.TID == 0 || info.WALTruncatedBytes != before.Size() {
		t.Fatalf("checkpoint info = %+v", info)
	}
	after, _ := os.Stat(wal)
	if after.Size() != 0 {
		t.Fatalf("wal size after checkpoint = %d", after.Size())
	}

	// Post-checkpoint deltas land in the (now small) WAL...
	if err := db.UpsertEmbedding("Post", "content_emb", postIDs[0], []float32{9, 9, 9, 9, 9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	id, err := db.AddVertex("Post", map[string]any{"id": int64(50), "language": "it"})
	if err != nil {
		t.Fatal(err)
	}
	delta, _ := os.Stat(wal)
	if delta.Size() == 0 || delta.Size() >= before.Size() {
		t.Fatalf("post-checkpoint wal = %d bytes (pre-checkpoint %d)", delta.Size(), before.Size())
	}

	// Crash and recover: snapshot + short WAL replay must equal live state.
	db2, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, db2)
	checkFixture(t, db2, postIDs)
	if got, ok := db2.GetEmbedding("Post", "content_emb", postIDs[0]); !ok || got[0] != 9 {
		t.Fatalf("post-checkpoint upsert lost: %v, %v", got, ok)
	}
	if rid, ok := db2.VertexByKey("Post", int64(50)); !ok || rid != id {
		t.Fatalf("post-checkpoint vertex = %d, %v", rid, ok)
	}
	if db2.Stats().VisibleTID != db.Stats().VisibleTID {
		t.Fatalf("visible tid diverged: %d vs %d", db2.Stats().VisibleTID, db.Stats().VisibleTID)
	}
}

func TestCheckpointThenReplayEquivalence(t *testing.T) {
	// Two databases receive identical updates; one checkpoints mid-way.
	// After a crash-restart both must serve identical results.
	run := func(checkpoint bool) *DB {
		dir := t.TempDir()
		db, err := Open(durableCfg(dir))
		if err != nil {
			t.Fatal(err)
		}
		postIDs := loadFixture(t, db)
		if checkpoint {
			if _, err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.DeleteEmbedding("Post", "content_emb", postIDs[5]); err != nil {
			t.Fatal(err)
		}
		if err := db.UpsertEmbedding("Post", "content_emb", postIDs[1], []float32{7, 0, 0, 0, 0, 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
		db2, err := Open(durableCfg(dir))
		if err != nil {
			t.Fatal(err)
		}
		return db2
	}
	a := run(false)
	defer closeDB(t, a)
	b := run(true)
	defer closeDB(t, b)
	query := make([]float32, 8)
	query[0] = 5.4
	ha, err := a.VectorSearch([]string{"Post.content_emb"}, query, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.VectorSearch([]string{"Post.content_emb"}, query, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ha) != len(hb) {
		t.Fatalf("result sizes differ: %d vs %d", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i] != hb[i] {
			t.Fatalf("hit %d differs: %+v vs %+v", i, ha[i], hb[i])
		}
	}
}

func TestCSVLoadsAreDurable(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(testDDL); err != nil {
		t.Fatal(err)
	}
	ids, err := db.LoadVerticesCSV("Person", []string{"id", "name", "cid"},
		strings.NewReader("1,ada,0\n2,bob,1\n3,eve,0\n"))
	if err != nil || len(ids) != 3 {
		t.Fatalf("load vertices = %v, %v", ids, err)
	}
	n, err := db.LoadEdgesCSV("knows", strings.NewReader("1,2\n2,3\n"))
	if err != nil || n != 2 {
		t.Fatalf("load edges = %d, %v", n, err)
	}
	// Crash, reopen.
	db2, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, db2)
	if db2.NumVertices("Person") != 3 || db2.NumEdges("knows") != 2 {
		t.Fatalf("recovered graph = %d vertices, %d edges", db2.NumVertices("Person"), db2.NumEdges("knows"))
	}
	id2, _ := db2.VertexByKey("Person", int64(2))
	if got := db2.OutNeighbors("knows", id2); len(got) != 2 {
		t.Fatalf("knows(2) = %v", got)
	}
	if v, _ := db2.Attr("Person", id2, "name"); v.(string) != "bob" {
		t.Fatalf("name = %v", v)
	}
}

func TestCheckpointRequiresDurability(t *testing.T) {
	db, err := Open(Config{Seed: 1, DisableVacuum: true})
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, db)
	if _, err := db.Checkpoint(); err != ErrNotDurable {
		t.Fatalf("checkpoint on non-durable db = %v", err)
	}
}

func TestCatalogReadErrorSurfaces(t *testing.T) {
	// A catalog that exists but cannot be read must fail Open, not
	// silently recover an empty schema.
	dir := t.TempDir()
	if err := os.Mkdir(filepath.Join(dir, "catalog.gsql"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(durableCfg(dir)); err == nil || !strings.Contains(err.Error(), "catalog") {
		t.Fatalf("open with unreadable catalog = %v", err)
	}
}

func TestPeriodicCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg(dir)
	cfg.CheckpointInterval = 20 * time.Millisecond
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	loadFixture(t, db)
	deadline := time.Now().Add(5 * time.Second)
	for db.Stats().Checkpoints == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	st := db.Stats()
	closeDB(t, db)
	if st.Checkpoints == 0 {
		t.Fatal("no periodic checkpoint ran")
	}
	if st.CheckpointErrors != 0 {
		t.Fatalf("checkpoint errors = %d", st.CheckpointErrors)
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.json")); err != nil {
		t.Fatalf("manifest missing: %v", err)
	}
	// And the checkpointed state recovers.
	db2, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, db2)
	if db2.NumVertices("Post") != 10 {
		t.Fatalf("recovered posts = %d", db2.NumVertices("Post"))
	}
}

// snapCfg is durableCfg with small segments so the fixture's 10 posts
// span two embedding segments — corruption tests can then show one
// segment falling back while the other loads from its snapshot.
func snapCfg(dir string) Config {
	c := durableCfg(dir)
	c.SegmentSize = 8
	return c
}

// checkpointedFixture loads the fixture, merges all vector deltas into
// the segment indexes and checkpoints, so the index snapshot covers two
// fully-built segments. The DB is closed; the caller reopens the dir.
func checkpointedFixture(t *testing.T) (dir string, postIDs []uint64) {
	t.Helper()
	dir = t.TempDir()
	db, err := Open(snapCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	postIDs = loadFixture(t, db)
	if err := db.Vacuum(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	closeDB(t, db)
	return dir, postIDs
}

// searchProbe runs a fixed set of searches whose outcomes must be
// identical however the indexes were restored.
func searchProbe(t *testing.T, db *DB) []SearchHit {
	t.Helper()
	var hits []SearchHit
	for _, q0 := range []float32{0.2, 3.6, 5.4, 8.9} {
		query := make([]float32, 8)
		query[0] = q0
		h, err := db.VectorSearch([]string{"Post.content_emb"}, query, 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		hits = append(hits, h...)
	}
	return hits
}

func TestOpenTakesIndexSnapshotFastPath(t *testing.T) {
	dir, postIDs := checkpointedFixture(t)
	db, err := Open(snapCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, db)
	st := db.Stats()
	// The acceptance bar: after a checkpoint, reopening performs zero
	// full segment index rebuilds.
	if st.IndexRebuiltSegments != 0 {
		t.Fatalf("restart rebuilt %d segment indexes, want 0", st.IndexRebuiltSegments)
	}
	if st.IndexSnapshotSegments != 2 {
		t.Fatalf("restart loaded %d segment indexes, want 2", st.IndexSnapshotSegments)
	}
	checkFixture(t, db, postIDs)

	// Post-checkpoint WAL deltas still overlay the loaded indexes.
	if err := db.UpsertEmbedding("Post", "content_emb", postIDs[0], []float32{42, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	closeDB(t, db)
	db2, err := Open(snapCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, db2)
	if got, ok := db2.GetEmbedding("Post", "content_emb", postIDs[0]); !ok || got[0] != 42 {
		t.Fatalf("post-checkpoint upsert lost across snapshot-path restart: %v, %v", got, ok)
	}
}

// corruptIndexSnapshot locates the checkpoint's index snapshot file and
// rewrites it through mutate.
func corruptIndexSnapshot(t *testing.T, dir string, mutate func([]byte) []byte) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.index"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("index snapshot files = %v, %v", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(matches[0], mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptIndexSnapshotFallsBackToRebuild(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		// wantLoaded < 0 means "any split"; rebuilt must cover the rest.
		wantLoaded int
	}{
		{"bitflip", func(d []byte) []byte {
			// Inside the last segment's payload: the CRC check must confine
			// the damage to that one segment.
			d[len(d)-9] ^= 0x40
			return d
		}, 1},
		{"truncated", func(d []byte) []byte { return d[:len(d)/2] }, -1},
		{"version-bumped", func(d []byte) []byte {
			d[4]++ // file-level format version: the whole file is rejected
			return d
		}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, postIDs := checkpointedFixture(t)

			// Reference run first: a cold rebuild with the snapshot intact
			// but ignored is today's recovery path.
			corruptIndexSnapshot(t, dir, tc.mutate)
			db, err := Open(snapCfg(dir))
			if err != nil {
				t.Fatalf("open with %s index snapshot: %v", tc.name, err)
			}
			st := db.Stats()
			if st.IndexSnapshotSegments+st.IndexRebuiltSegments != 2 {
				t.Fatalf("restored %d+%d segments, want 2 total", st.IndexSnapshotSegments, st.IndexRebuiltSegments)
			}
			if tc.wantLoaded >= 0 && st.IndexSnapshotSegments != int64(tc.wantLoaded) {
				t.Fatalf("loaded %d segments from %s snapshot, want %d (rebuilt %d)",
					st.IndexSnapshotSegments, tc.name, tc.wantLoaded, st.IndexRebuiltSegments)
			}
			checkFixture(t, db, postIDs)
			gotHits := searchProbe(t, db)
			closeDB(t, db)

			// Cold rebuild: no index snapshot at all.
			matches, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.index"))
			for _, m := range matches {
				os.Remove(m)
			}
			cold, err := Open(snapCfg(dir))
			if err != nil {
				t.Fatal(err)
			}
			defer closeDB(t, cold)
			cst := cold.Stats()
			if cst.IndexSnapshotSegments != 0 || cst.IndexRebuiltSegments != 2 {
				t.Fatalf("cold restart = %d loaded / %d rebuilt, want 0/2", cst.IndexSnapshotSegments, cst.IndexRebuiltSegments)
			}
			coldHits := searchProbe(t, cold)
			if len(gotHits) != len(coldHits) {
				t.Fatalf("hit counts diverged: %d vs %d", len(gotHits), len(coldHits))
			}
			for i := range gotHits {
				if gotHits[i] != coldHits[i] {
					t.Fatalf("hit %d diverged from cold rebuild: %+v vs %+v", i, gotHits[i], coldHits[i])
				}
			}
		})
	}
}
