package tigervector

// Benchmarks regenerating every table and figure of the paper's
// evaluation (Sec. 6), one testing.B target per artifact, plus ablation
// benches for the design decisions called out in DESIGN.md.
//
// Dataset sizes scale with the TGV_SCALE environment variable; when the
// variable is unset the benchmarks default to a reduced scale (0.25 =
// 5k vectors / 750 persons) so `go test -bench=.` completes in minutes on
// one core. Set TGV_SCALE=1 (or higher) for the full laptop-scale runs
// reported in EXPERIMENTS.md.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/storage"
)

func benchScale(b *testing.B) {
	b.Helper()
	if os.Getenv("TGV_SCALE") == "" {
		os.Setenv("TGV_SCALE", "0.25")
		b.Cleanup(func() { os.Unsetenv("TGV_SCALE") })
	}
}

func sink(b *testing.B) io.Writer {
	if testing.Verbose() {
		return os.Stdout
	}
	return io.Discard
}

// BenchmarkTable1DatasetStats regenerates Table 1 (dataset statistics).
func BenchmarkTable1DatasetStats(b *testing.B) {
	benchScale(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table1(sink(b)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7ThroughputSIFT regenerates Figure 7(a): QPS vs recall on
// the SIFT-like dataset for TigerVector, Milvus, Neo4j and Neptune.
func BenchmarkFig7ThroughputSIFT(b *testing.B) {
	benchScale(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig7(sink(b), "sift"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7ThroughputDeep regenerates Figure 7(b) on Deep-like data.
func BenchmarkFig7ThroughputDeep(b *testing.B) {
	benchScale(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig7(sink(b), "deep"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8LatencySIFT regenerates Figure 8(a): single-thread latency
// vs recall.
func BenchmarkFig8LatencySIFT(b *testing.B) {
	benchScale(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig8(sink(b), "sift"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8LatencyDeep regenerates Figure 8(b).
func BenchmarkFig8LatencyDeep(b *testing.B) {
	benchScale(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig8(sink(b), "deep"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9NodeScalability regenerates Figure 9: modeled QPS with
// 1/2/4/8 simulated nodes.
func BenchmarkFig9NodeScalability(b *testing.B) {
	benchScale(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig9(sink(b)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10DataScalability regenerates Figure 10: modeled QPS at 1x
// and 10x data on 8 simulated nodes.
func BenchmarkFig10DataScalability(b *testing.B) {
	benchScale(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig10(sink(b)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2IndexBuild regenerates Table 2: end-to-end / data-load /
// index-build times for TigerVector, Milvus and Neo4j.
func BenchmarkTable2IndexBuild(b *testing.B) {
	benchScale(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2(sink(b), "sift"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11IndexUpdate regenerates Figure 11: incremental update
// time vs update rate against the full-rebuild line.
func BenchmarkFig11IndexUpdate(b *testing.B) {
	benchScale(b)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig11(sink(b)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3HybridSF10 regenerates Table 3: hybrid IC queries at the
// smaller scale factor.
func BenchmarkTable3HybridSF10(b *testing.B) {
	benchScale(b)
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		if _, err := bench.Table3(sink(b), dir); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4HybridSF30 regenerates Table 4 at 3x the persons.
func BenchmarkTable4HybridSF30(b *testing.B) {
	benchScale(b)
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		if _, err := bench.Table4(sink(b), dir); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSegmentedVsGlobal measures design decision 1: per-
// segment indexes + global merge vs one global index.
func BenchmarkAblationSegmentedVsGlobal(b *testing.B) {
	benchScale(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.AblationSegmentedVsGlobal(sink(b)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPrePostFilter measures design decision 2: pre-filter
// bitmaps vs post-filter retry loops at 1% selectivity.
func BenchmarkAblationPrePostFilter(b *testing.B) {
	benchScale(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.AblationPrePostFilter(sink(b), 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBruteForceThreshold measures design decision 3: the
// low-valid-count brute-force fallback.
func BenchmarkAblationBruteForceThreshold(b *testing.B) {
	benchScale(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.AblationBruteForceThreshold(sink(b)); err != nil {
			b.Fatal(err)
		}
	}
}

// servingBenchDB builds the serving-throughput dataset: 4096 vectors of
// dimension 64 across 4 segments, plus 64 top-10 queries. Few segments
// per query means a single search cannot saturate a many-core machine,
// which is exactly the regime where inter-query pooling pays off.
func servingBenchDB(b *testing.B) (*DB, []BatchQuery) {
	b.Helper()
	db, err := Open(Config{SegmentSize: 1024, Seed: 1, DataDir: b.TempDir(), DisableVacuum: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { closeDB(b, db) })
	err = db.Exec(`
CREATE VERTEX Item (id INT PRIMARY KEY);
ALTER VERTEX Item ADD EMBEDDING ATTRIBUTE emb (
  DIMENSION = 64, MODEL = GPT4, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);`)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	const n = 4096
	ids := make([]uint64, n)
	vecs := make([][]float32, n)
	for i := 0; i < n; i++ {
		id, err := db.AddVertex("Item", map[string]any{"id": int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		v := make([]float32, 64)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		ids[i] = id
		vecs[i] = v
	}
	if err := db.BulkLoadEmbeddings("Item", "emb", ids, vecs); err != nil {
		b.Fatal(err)
	}
	queries := make([]BatchQuery, 64)
	for i := range queries {
		q := make([]float32, 64)
		for j := range q {
			q[j] = float32(r.NormFloat64())
		}
		queries[i] = BatchQuery{Attrs: []string{"Item.emb"}, Query: q, K: 10}
	}
	return db, queries
}

// BenchmarkServingSerialSearch is the baseline: the 64-query workload
// issued as a serial loop of VectorSearch calls (one query in flight at
// a time; each query still fans out over its segments internally).
func BenchmarkServingSerialSearch(b *testing.B) {
	db, queries := servingBenchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := db.VectorSearch(q.Attrs, q.Query, q.K, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(queries)*b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkServingBatchSearch is the serving path: the same 64-query
// workload submitted as one BatchVectorSearch, executed concurrently by
// the bounded worker pool. On a multi-core runner throughput scales
// with the pool width; compare queries/s against the serial baseline.
func BenchmarkServingBatchSearch(b *testing.B) {
	db, queries := servingBenchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, res := range db.BatchVectorSearch(queries) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
	b.ReportMetric(float64(len(queries)*b.N)/b.Elapsed().Seconds(), "queries/s")
}

// restartCorpusDir builds a durable, checkpointed corpus on disk: 4096
// vectors of dimension 64 across 8 segments, merged into their segment
// indexes and checkpointed, so reopening the directory exercises the
// restart path (graph + vector snapshot load, then index restore).
func restartCorpusDir(b *testing.B) (string, Config) {
	b.Helper()
	dir := b.TempDir()
	cfg := Config{SegmentSize: 512, Seed: 1, DataDir: dir,
		Durability: true, NoFsync: true, DisableVacuum: true}
	db, err := Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	err = db.Exec(`
CREATE VERTEX Item (id INT PRIMARY KEY);
ALTER VERTEX Item ADD EMBEDDING ATTRIBUTE emb (
  DIMENSION = 64, MODEL = GPT4, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);`)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	const n = 4096
	ids := make([]uint64, n)
	vecs := make([][]float32, n)
	for i := 0; i < n; i++ {
		id, err := db.AddVertex("Item", map[string]any{"id": int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		v := make([]float32, 64)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		ids[i] = id
		vecs[i] = v
	}
	if err := db.BulkLoadEmbeddings("Item", "emb", ids, vecs); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	closeDB(b, db)
	return dir, cfg
}

// BenchmarkOpenColdVsSnapshot measures restart time with and without the
// checkpoint's index snapshot: Snapshot deserializes the per-segment
// indexes in parallel, Cold falls back to rebuilding them from the
// vector snapshot (the pre-index-snapshot recovery path). With
// TGV_BENCH_OUT set, the averages are also written there as JSON
// (`make bench-restart` emits BENCH_restart.json).
func BenchmarkOpenColdVsSnapshot(b *testing.B) {
	dir, cfg := restartCorpusDir(b)
	reopen := func(b *testing.B, wantSnapshot bool) DBStats {
		db, err := Open(cfg)
		if err != nil {
			b.Fatal(err)
		}
		st := db.Stats()
		closeDB(b, db)
		if wantSnapshot && st.IndexRebuiltSegments != 0 {
			b.Fatalf("snapshot path rebuilt %d segments", st.IndexRebuiltSegments)
		}
		if !wantSnapshot && st.IndexSnapshotSegments != 0 {
			b.Fatalf("cold path loaded %d segment snapshots", st.IndexSnapshotSegments)
		}
		return st
	}
	var snapNs, coldNs float64
	var segments int64
	b.Run("Snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := reopen(b, true)
			segments = st.IndexSnapshotSegments
		}
		snapNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("Cold", func(b *testing.B) {
		// Deleting the index snapshot degrades the manifest to the
		// rebuild path; recovery semantics are unchanged.
		matches, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.index"))
		for _, m := range matches {
			if err := os.Remove(m); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reopen(b, false)
		}
		coldNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	if out := os.Getenv("TGV_BENCH_OUT"); out != "" && snapNs > 0 && coldNs > 0 {
		payload := fmt.Sprintf(
			`{"benchmark":"OpenColdVsSnapshot","vectors":4096,"dim":64,"segments":%d,`+
				`"cold_open_ns":%.0f,"snapshot_open_ns":%.0f,"speedup":%.2f}`+"\n",
			segments, coldNs, snapNs, coldNs/snapNs)
		if err := os.WriteFile(out, []byte(payload), 0o644); err != nil {
			b.Fatal(err)
		}
		b.Logf("restart bench written to %s: %s", out, payload)
	}
}

// filteredCorpus builds an in-memory corpus for the filtered-search
// planner benchmark: one embedding attribute, several segments, vacuum
// off (no background merges perturbing timings).
func filteredCorpus(b *testing.B, plan FilterPlanConfig) (*DB, []uint64, [][]float32) {
	b.Helper()
	db, err := Open(Config{SegmentSize: 1024, Seed: 3, DisableVacuum: true, FilterPlan: plan})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { closeDB(b, db) })
	err = db.Exec(`
CREATE VERTEX Item (id INT PRIMARY KEY);
ALTER VERTEX Item ADD EMBEDDING ATTRIBUTE emb (
  DIMENSION = 32, MODEL = GPT4, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);`)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(8))
	const n = 8192
	ids := make([]uint64, n)
	vecs := make([][]float32, n)
	for i := 0; i < n; i++ {
		id, err := db.AddVertex("Item", map[string]any{"id": int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = id
		v := make([]float32, 32)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		vecs[i] = v
	}
	if err := db.BulkLoadEmbeddings("Item", "emb", ids, vecs); err != nil {
		b.Fatal(err)
	}
	return db, ids, vecs
}

// BenchmarkFilteredSearch sweeps filter selectivity and compares the
// planner's three strategies against the pre-planner baseline (callback
// filter probing the locked global bitmap at unchanged ef). MaxEfInflation
// is pinned to 1 so "bitmap vs callback" isolates the representation
// change (dense lock-free probe vs locked bitmap probe) at identical
// beam width; "plan" additionally shows the automatic strategy choice.
// With TGV_BENCH_FILTERED_OUT set, per-mode averages are written as
// JSON (`make bench-filtered` emits BENCH_filtered.json).
func BenchmarkFilteredSearch(b *testing.B) {
	selectivities := []struct {
		name string
		frac float64
	}{
		{"0.1pct", 0.001}, {"1pct", 0.01}, {"10pct", 0.1}, {"50pct", 0.5}, {"100pct", 1.0},
	}
	force := map[string]FilterPlanConfig{
		"plan":   {MaxEfInflation: 1},
		"brute":  {BruteForceCount: 1 << 30, BruteForceSelectivity: 1.1, MaxEfInflation: 1},
		"bitmap": {BruteForceCount: -1, BruteForceSelectivity: -1, PostFilterSelectivity: 2, MaxEfInflation: 1},
		"post":   {BruteForceCount: -1, BruteForceSelectivity: -1, PostFilterSelectivity: 1e-12, MaxEfInflation: 1},
	}
	modes := []string{"plan", "brute", "bitmap", "post", "callback"}
	const k, ef = 10, 96

	type row struct {
		Selectivity float64 `json:"selectivity"`
		Mode        string  `json:"mode"`
		NsPerOp     float64 `json:"ns_per_op"`
	}
	// Keyed, last write wins: the testing package runs each sub-benchmark
	// closure more than once (the b.N=1 discovery run before the measured
	// run), and only the final, fully-measured numbers should be emitted.
	byKey := map[string]row{}
	var keyOrder []string

	for _, mode := range modes {
		cfg := force["plan"]
		if c, ok := force[mode]; ok {
			cfg = c
		}
		db, ids, vecs := filteredCorpus(b, cfg)
		store, ok := db.svc.Store("Item.emb")
		if !ok {
			b.Fatal("store missing")
		}
		tid := db.mgr.Visible()
		for _, sel := range selectivities {
			stride := int(1 / sel.frac)
			bm := storageBitmapOf(ids, stride)
			filter := func(id uint64) bool { return bm.Get(int(id)) }
			q := vecs[1]
			key := fmt.Sprintf("%s/%s", mode, sel.name)
			b.Run(key, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var err error
					if mode == "callback" {
						// Pre-planner path: callback filter, locked
						// bitmap probe per candidate, unchanged ef.
						_, err = store.Search(tid, q, k, ef, filter, 1)
					} else {
						_, _, err = store.SearchFiltered(tid, q, k, ef, bm, 1)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
				if _, seen := byKey[key]; !seen {
					keyOrder = append(keyOrder, key)
				}
				byKey[key] = row{Selectivity: sel.frac, Mode: mode,
					NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N)}
			})
		}
	}

	rows := make([]row, 0, len(keyOrder))
	for _, key := range keyOrder {
		rows = append(rows, byKey[key])
	}
	if out := os.Getenv("TGV_BENCH_FILTERED_OUT"); out != "" && len(rows) > 0 {
		payload, err := json.MarshalIndent(struct {
			Benchmark string `json:"benchmark"`
			Vectors   int    `json:"vectors"`
			Dim       int    `json:"dim"`
			K         int    `json:"k"`
			Ef        int    `json:"ef"`
			Results   []row  `json:"results"`
		}{"FilteredSearch", 8192, 32, k, ef, rows}, "", " ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(out, append(payload, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		b.Logf("filtered bench written to %s", out)
	}
}

// storageBitmapOf builds the request filter bitmap admitting every
// stride-th id.
func storageBitmapOf(ids []uint64, stride int) *storage.Bitmap {
	bm := storage.NewBitmap(len(ids))
	for i := 0; i < len(ids); i += stride {
		bm.Set(int(ids[i]))
	}
	return bm
}
