// Package tigervector is a from-scratch Go reproduction of TigerVector
// (SIGMOD 2025): vector search integrated natively into a TigerGraph-style
// MPP property-graph database.
//
// A DB owns a property graph (schema, vertices, edges), an embedding
// service managing vector attributes decoupled from other attributes
// (per-segment HNSW indexes, MVCC vector deltas, two background vacuum
// processes), an MPP query engine, and a GSQL-subset interpreter with
// declarative vector search:
//
//	db, _ := tigervector.Open(tigervector.Config{})
//	defer db.Close()
//	_ = db.Exec(`
//	  CREATE VERTEX Post (id INT PRIMARY KEY, author STRING, content STRING);
//	  ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE content_emb (
//	    DIMENSION = 128, MODEL = GPT4, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);
//	  CREATE QUERY topk (LIST<FLOAT> qv, INT k) {
//	    Res = SELECT s FROM (s:Post) ORDER BY VECTOR_DIST(s.content_emb, qv) LIMIT k;
//	    PRINT Res;
//	  }`)
//	res, _ := db.Run("topk", map[string]any{"qv": queryVec, "k": 10})
//
// Filtered search, vector search on graph patterns, vector similarity
// joins, and the composable VectorSearch() function are all supported;
// see the examples directory.
package tigervector

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/gsql"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/vacuum"
)

// Config controls a DB instance. The zero value is usable.
type Config struct {
	// SegmentSize is the number of vertices per storage segment (the MPP
	// parallelism unit). Default 1024.
	SegmentSize int
	// DataDir holds delta files and the WAL. Default: a fresh temp dir.
	DataDir string
	// DefaultEf is the index search beam used when queries don't set ef.
	// Default 64.
	DefaultEf int
	// DisableVacuum turns off the background delta-merge and index-merge
	// processes; committed vector updates are then served from the delta
	// store until Vacuum() is called manually. Write backpressure is
	// also off in this mode (there is no background drain to wait for).
	//
	// Vacuum() is always safe to call, with or without the background
	// manager running: flush and index-merge passes are serialized per
	// store, so a manual drain that overlaps a background mid-merge
	// simply queues behind it.
	DisableVacuum bool
	// VacuumInterval overrides the index merge floor cadence — the
	// maximum time between merge passes. Default 200ms. The background
	// manager also merges early when measured state asks for it (delta
	// file backlog, tombstone ratio; see internal/vacuum.Options), so
	// raising this throttles only the idle cadence, not burst handling.
	// Ignored when DisableVacuum is set: no background passes run at any
	// interval, and index freshness is entirely in the caller's hands.
	VacuumInterval time.Duration
	// Seed fixes all internal randomness (HNSW levels, Louvain order).
	Seed int64
	// Durability enables the write-ahead log. It covers the catalog
	// (DDL), graph mutations (vertices, edges, attribute writes) and
	// vector updates; Checkpoint() bounds replay time by snapshotting
	// the full state and truncating the WAL.
	Durability bool
	// NoFsync disables the per-commit WAL and catalog fsync. Appends are
	// still written immediately and synced at Checkpoint and Close, so
	// this trades power-loss durability of the last few commits for
	// commit throughput (batched-sync mode).
	NoFsync bool
	// CheckpointInterval runs Checkpoint() periodically in the
	// background. Zero disables periodic checkpoints; Checkpoint() can
	// always be called manually. Requires Durability.
	CheckpointInterval time.Duration
	// Workers is the width of the inter-query worker pool used by
	// BatchVectorSearch and the serving layer. Default GOMAXPROCS.
	Workers int
	// FilterPlan tunes the selectivity-aware filtered-search planner
	// (per-segment choice among brute-force scan, bitmap-filtered index
	// search and post-filtered index search). Zero fields select the
	// defaults.
	FilterPlan FilterPlanConfig
	// Quantization opts brute-force segment scans into int8 scalar
	// quantization (SQ8) with exact float32 re-scoring. Off by default;
	// index-backed searches and range scans always score exact floats.
	Quantization QuantizationConfig
	// GroupCommit opts durable commits into fsync coalescing: concurrent
	// commits whose WAL records land within one latency budget share a
	// single fsync, so durable write throughput scales with commit
	// concurrency instead of being capped at 1/fsync. Off by default
	// (every commit pays its own fsync, the PR-2 behavior); it has no
	// effect without Durability or with NoFsync (nothing to coalesce).
	GroupCommit GroupCommitConfig
	// Backpressure bounds the write backlog (committed vector updates
	// the vacuum has not yet merged into index snapshots) by pacing
	// writers once it crosses a soft threshold. On by default whenever
	// the background vacuum runs; see BackpressureConfig.
	Backpressure BackpressureConfig
}

// GroupCommitConfig controls WAL group commit (see txn.GroupCommitConfig
// for the mechanism). The WAL byte stream is unchanged — only fsyncs
// and visibility publishes are batched — so replication and recovery
// behave identically.
type GroupCommitConfig struct {
	// Enabled turns fsync coalescing on.
	Enabled bool
	// MaxDelay is how long a commit may linger waiting for batchmates
	// before fsyncing; it bounds the latency cost of batching. Default
	// 1ms.
	MaxDelay time.Duration
	// MaxBatchBytes fsyncs a batch early once this many unsynced WAL
	// bytes accumulate. Default 1 MiB.
	MaxBatchBytes int
}

// BackpressureConfig bounds the unmerged write backlog. Writers start
// paying a pacing delay at SoftPendingRows, scaling linearly to
// MaxDelay at HardPendingRows, where they additionally stall (bounded —
// admission never deadlocks) until the vacuum drains below the
// ceiling. Pacing also kicks the vacuum, so the backlog drains at merge
// speed. Only active while the background vacuum runs.
type BackpressureConfig struct {
	// Disabled turns admission pacing off.
	Disabled bool
	// SoftPendingRows is the backlog (pending deltas + unmerged delta
	// file rows, per store sum) where pacing starts. Default 32768.
	SoftPendingRows int
	// HardPendingRows is the backlog ceiling. Default 2*SoftPendingRows.
	HardPendingRows int
	// MaxDelay is the per-write pacing ceiling. Default 20ms.
	MaxDelay time.Duration
}

// QuantizationConfig controls SQ8 scalar quantization of brute segment
// scans (see internal/core.QuantConfig for the exact semantics). Each
// segment keeps a per-dimension min/max affine int8 code alongside the
// float32 rows; a quantized scan scores the codes and then re-scores the
// best candidates exactly, so results stay high-recall while the scan
// reads a quarter of the bytes.
type QuantizationConfig struct {
	// Enabled turns quantized brute scans on.
	Enabled bool
	// RescoreFactor is the candidate multiple re-scored exactly: a top-k
	// scan keeps the best RescoreFactor*k quantized candidates and
	// re-ranks them with float32 distances. Default 4.
	RescoreFactor int
}

// FilterPlanConfig exposes the planner thresholds (see
// internal/core.PlanConfig for the exact semantics). All fields
// default when zero.
type FilterPlanConfig struct {
	// BruteForceCount is the qualified-count floor below which a
	// segment is brute-forced. Default 64; negative disables.
	BruteForceCount int
	// BruteForceSelectivity is the selectivity at or below which a
	// segment is brute-forced. Default 0.01; negative disables.
	BruteForceSelectivity float64
	// PostFilterSelectivity is the selectivity at or above which the
	// index runs unfiltered and results are post-filtered. Default 0.9;
	// values > 1 never post-filter.
	PostFilterSelectivity float64
	// MaxEfInflation caps the bitmap strategy's ef inflation at
	// ef*MaxEfInflation. Default 16.
	MaxEfInflation float64
}

// DB is a TigerVector database instance.
type DB struct {
	cfg     Config
	graph   *graph.Store
	svc     *core.Service
	mgr     *txn.Manager
	engine  *engine.Engine
	interp  *gsql.Interpreter
	vac     *vacuum.Manager
	pool    *core.Pool
	gov     *core.WriteGovernor // nil when backpressure is off
	walFile *os.File
	wal     *txn.WAL
	ownsDir bool

	// cpMu serializes checkpoints against every mutating entry point:
	// mutators hold it shared, Checkpoint (and the WAL rotation inside
	// it) holds it exclusively. Vector searches never take it; GSQL Run
	// does (tg_louvain writes derived attributes).
	cpMu   sync.RWMutex
	closed bool // guarded by cpMu — set by Close, checked by Checkpoint
	cpStop chan struct{}
	cpDone chan struct{}

	// catMu serializes catalog-log appends against the replication
	// reads of its length and content (ReplState, ReadCatalog), keeping
	// the byte offsets replicas pull by stable.
	catMu sync.Mutex

	checkpoints   atomic.Int64
	checkpointErr atomic.Int64
	lastCpTID     atomic.Uint64
	// recoveredCpTID is the checkpoint TID the manifest named at Open;
	// CheckpointTID folds it with lastCpTID so the WAL-shipping horizon
	// survives restarts.
	recoveredCpTID atomic.Uint64
	tornBytes      atomic.Int64 // WAL bytes truncated during recovery

	// Restart-path counters, set once while Open restores a checkpoint:
	// segment indexes deserialized from the index snapshot vs rebuilt
	// from vectors, and the wall time of that phase.
	indexSnapSegs      atomic.Int64
	indexRebuiltSegs   atomic.Int64
	openIndexLoadNanos atomic.Int64
}

// Open creates a DB.
func Open(cfg Config) (*DB, error) {
	if cfg.SegmentSize <= 0 {
		cfg.SegmentSize = storage.DefaultSegmentSize
	}
	if cfg.DefaultEf <= 0 {
		cfg.DefaultEf = 64
	}
	ownsDir := false
	if cfg.DataDir == "" {
		dir, err := os.MkdirTemp("", "tigervector-*")
		if err != nil {
			return nil, fmt.Errorf("tigervector: create data dir: %w", err)
		}
		cfg.DataDir = dir
		ownsDir = true
	} else if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("tigervector: data dir: %w", err)
	}

	sch := graph.NewSchema()
	g := graph.NewStore(sch, cfg.SegmentSize)
	svc := core.NewService(cfg.DataDir, cfg.SegmentSize, cfg.Seed)
	svc.SetPlanConfig(core.PlanConfig{
		BruteCount:       cfg.FilterPlan.BruteForceCount,
		BruteSelectivity: cfg.FilterPlan.BruteForceSelectivity,
		PostSelectivity:  cfg.FilterPlan.PostFilterSelectivity,
		MaxEfScale:       cfg.FilterPlan.MaxEfInflation,
	})
	// Before recovery: restoring a checkpoint must know whether to install
	// (or re-derive) per-segment codecs as vectors come back.
	svc.SetQuantization(core.QuantConfig{
		Enabled: cfg.Quantization.Enabled,
		Rescore: cfg.Quantization.RescoreFactor,
	})

	mgr := txn.NewManager(svc, nil)
	eng := engine.New(g, svc, mgr)
	interp := gsql.NewInterpreter(eng)
	interp.DefaultEf = cfg.DefaultEf
	interp.LouvainSeed = cfg.Seed

	db := &DB{
		cfg: cfg, graph: g, svc: svc, mgr: mgr, engine: eng,
		interp: interp, ownsDir: ownsDir,
	}
	// The pool exists before recovery: Open's fast path deserializes
	// segment index snapshots across it.
	db.pool = core.NewPool(cfg.Workers)
	if cfg.Durability {
		// Recover checkpoint + catalog (DDL log) + WAL — in that order —
		// before opening the WAL for appends.
		if err := db.recover(); err != nil {
			db.pool.Close()
			return nil, err
		}
		f, err := os.OpenFile(db.walPath(), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			db.pool.Close()
			return nil, fmt.Errorf("tigervector: open wal: %w", err)
		}
		// Persist the file's directory entry: fsyncing wal.log's content
		// is worthless if a power loss forgets the file ever existed.
		if !cfg.NoFsync {
			if err := syncDir(cfg.DataDir); err != nil {
				_ = f.Close()
				db.pool.Close()
				return nil, fmt.Errorf("tigervector: sync data dir: %w", err)
			}
		}
		db.walFile = f
		db.wal = txn.NewWAL(f)
		if err := db.wal.SetSync(!cfg.NoFsync); err != nil {
			_ = f.Close()
			db.pool.Close()
			return nil, fmt.Errorf("tigervector: %w", err)
		}
		mgr2 := txn.NewManager(svc, db.wal)
		mgr2.Recover(mgr.Visible())
		if cfg.GroupCommit.Enabled && !cfg.NoFsync {
			mgr2.EnableGroupCommit(txn.GroupCommitConfig{
				MaxDelay:      cfg.GroupCommit.MaxDelay,
				MaxBatchBytes: cfg.GroupCommit.MaxBatchBytes,
			})
		}
		db.mgr = mgr2
		eng.Mgr = mgr2
	}
	db.vac = vacuum.NewManager(svc, vacuum.Options{
		MergeInterval: cfg.VacuumInterval,
		MaxThreads:    runtime.GOMAXPROCS(0),
		Monitor:       vacuum.LoadFunc(eng.Load),
		// Under group commit, deltas can sit in the delta store before
		// their TID is published (durable); the clamp keeps flushes from
		// advancing the index watermark past the visible snapshot.
		Visible: func() uint64 { return uint64(db.mgr.Visible()) },
	})
	if !cfg.DisableVacuum {
		db.vac.Start()
		if !cfg.Backpressure.Disabled {
			db.gov = core.NewWriteGovernor(
				cfg.Backpressure.SoftPendingRows,
				cfg.Backpressure.HardPendingRows,
				cfg.Backpressure.MaxDelay,
				func() int {
					total := 0
					for _, st := range db.svc.Stores() {
						total += st.Backlog()
					}
					return total
				},
				db.vac.Kick,
			)
		}
	}
	if cfg.Durability && cfg.CheckpointInterval > 0 {
		db.cpStop = make(chan struct{})
		db.cpDone = make(chan struct{})
		go db.checkpointLoop()
	}
	return db, nil
}

// Close stops background processes, syncs the WAL and releases resources.
func (db *DB) Close() error {
	if db.cpStop != nil {
		close(db.cpStop)
		<-db.cpDone
		db.cpStop = nil
	}
	// Waits for an in-flight manual Checkpoint (which restarts the vacuum
	// on its way out) and marks the DB closed so no later Checkpoint can
	// restart it again.
	db.cpMu.Lock()
	db.closed = true
	db.cpMu.Unlock()
	db.pool.Close()
	db.vac.Stop()
	var closeErr error
	db.cpMu.Lock()
	if db.walFile != nil {
		// In batched-sync mode this is where the tail commits reach
		// disk — a dropped error here acknowledges commits the disk
		// never took, so all three failures surface to the caller.
		closeErr = errors.Join(db.wal.Sync(), db.syncCatalog(), db.walFile.Close())
		db.walFile = nil
	}
	db.cpMu.Unlock()
	if db.ownsDir {
		return errors.Join(closeErr, os.RemoveAll(db.cfg.DataDir))
	}
	return closeErr
}

// Exec parses and applies GSQL statements: DDL (CREATE VERTEX / EDGE /
// EMBEDDING SPACE, ALTER VERTEX ADD EMBEDDING ATTRIBUTE) and CREATE QUERY
// definitions. With Durability enabled the statements are appended to the
// catalog log and replayed on the next Open.
func (db *DB) Exec(src string) error {
	db.cpMu.RLock()
	defer db.cpMu.RUnlock()
	if err := db.interp.Exec(src); err != nil {
		return err
	}
	if db.cfg.Durability {
		return db.appendCatalog(src)
	}
	return nil
}

// appendCatalog durably appends one DDL statement to the catalog log.
func (db *DB) appendCatalog(src string) error {
	return db.appendCatalogBytes([]byte(src + "\n"))
}

// appendCatalogBytes durably appends raw bytes to the catalog log; the
// replication path ships these exact bytes, so replicas append them
// unmodified and catalog offsets stay aligned across the cluster. The
// close error joins the result: on this path a failed close can be the
// only sign the append never reached the file.
func (db *DB) appendCatalogBytes(b []byte) (err error) {
	db.catMu.Lock()
	defer db.catMu.Unlock()
	f, err := os.OpenFile(db.catalogPath(), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("tigervector: catalog log: %w", err)
	}
	defer func() { err = errors.Join(err, f.Close()) }()
	if _, err := f.Write(b); err != nil {
		return err
	}
	if !db.cfg.NoFsync {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("tigervector: catalog sync: %w", err)
		}
		// DDL is rare; an unconditional directory sync keeps the
		// file's creation as durable as its content.
		if err := syncDir(db.cfg.DataDir); err != nil {
			return fmt.Errorf("tigervector: sync data dir: %w", err)
		}
	}
	return nil
}

func (db *DB) walPath() string     { return db.cfg.DataDir + "/wal.log" }
func (db *DB) catalogPath() string { return db.cfg.DataDir + "/catalog.gsql" }

// syncCatalog flushes the catalog log to stable storage. Exec syncs per
// statement unless NoFsync batches; Checkpoint and Close call this so a
// fsynced snapshot manifest can never outlive the DDL it depends on.
func (db *DB) syncCatalog() error {
	f, err := os.OpenFile(db.catalogPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	return errors.Join(f.Sync(), f.Close())
}

// recover restores the database in snapshot→log order: replay the catalog
// (DDL) log so schema, queries and embedding stores exist; load the
// newest checkpoint snapshot of graph and embedding data, if any; then
// replay the WAL, skipping records the checkpoint already covers and
// truncating a torn tail record instead of failing — a crash mid-append
// must not make the store unopenable.
func (db *DB) recover() error {
	data, err := os.ReadFile(db.catalogPath())
	if err != nil && !os.IsNotExist(err) {
		// Anything but "no catalog yet" (permissions, I/O) must surface:
		// silently recovering an empty catalog would orphan every
		// embedding and vector delta that follows.
		return fmt.Errorf("tigervector: read catalog: %w", err)
	}
	if len(data) > 0 {
		if err := db.interp.Exec(string(data)); err != nil {
			return fmt.Errorf("tigervector: catalog replay: %w", err)
		}
	}
	cpTID, err := db.loadCheckpoint()
	if err != nil {
		return err
	}
	db.recoveredCpTID.Store(uint64(cpTID))
	db.mgr.Recover(cpTID)
	var maxTID txn.TID
	truncated, err := txn.RecoverWAL(db.walPath(), func(tid txn.TID, vectors []txn.StagedVector, ops []txn.GraphOp) error {
		if tid <= cpTID {
			// Already materialized in the checkpoint snapshot. Such
			// records only exist after a crash between the manifest
			// rename and the WAL truncation.
			return nil
		}
		for i := range ops {
			if err := db.applyGraphOp(&ops[i]); err != nil {
				return fmt.Errorf("graph op (tid %d): %w", tid, err)
			}
		}
		for _, v := range vectors {
			d := txn.VectorDelta{Action: v.Action, ID: v.ID, TID: tid, Vec: v.Vec}
			if err := db.svc.ApplyVectorDelta(v.AttrKey, d); err != nil {
				return err
			}
		}
		if tid > maxTID {
			maxTID = tid
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("tigervector: wal replay: %w", err)
	}
	// Surface how much log was cut away (normally the single torn tail
	// record of a crash mid-append; anything larger suggests mid-log
	// corruption) in Stats, since Open itself succeeds.
	db.tornBytes.Store(truncated)
	db.mgr.Recover(maxTID)
	// Delta files written by the previous process are orphans now: every
	// record they held is either in the checkpoint snapshot or was just
	// replayed from the WAL into fresh delta stores, and the new
	// DeltaFileSets do not track old files.
	if matches, err := filepath.Glob(filepath.Join(db.cfg.DataDir, "*.delta")); err == nil {
		for _, m := range matches {
			os.Remove(m)
		}
	}
	return nil
}

// applyGraphOp replays one WAL graph record against the in-memory graph.
func (db *DB) applyGraphOp(op *txn.GraphOp) error {
	switch op.Kind {
	case txn.OpAddVertex:
		attrs := make(map[string]storage.Value, len(op.Attrs))
		for _, a := range op.Attrs {
			attrs[a.Name] = a.Value
		}
		id, err := db.graph.AddVertex(op.Type, attrs)
		if err != nil {
			return err
		}
		if id != op.ID {
			// Replay is deterministic (dense allocation in log order); a
			// diverging id means the snapshot and log disagree.
			return fmt.Errorf("tigervector: wal replay diverged: vertex %s got id %d, logged %d", op.Type, id, op.ID)
		}
		return nil
	case txn.OpAddEdge:
		return db.graph.AddEdge(op.Type, op.ID, op.To)
	case txn.OpDeleteVertex:
		return db.graph.DeleteVertex(op.Type, op.ID)
	case txn.OpSetAttr:
		if len(op.Attrs) != 1 {
			return fmt.Errorf("tigervector: set-attr record has %d attrs", len(op.Attrs))
		}
		return db.graph.SetAttr(op.Type, op.ID, op.Attrs[0].Name, op.Attrs[0].Value)
	}
	return fmt.Errorf("tigervector: unknown graph op kind %d", op.Kind)
}

// Queries lists the names of defined GSQL queries.
func (db *DB) Queries() []string { return db.interp.Queries() }

// Vacuum synchronously flushes committed vector deltas and merges them
// into the indexes (one full pass of both background processes). It
// holds the checkpoint lock shared: a merge moves deltas between files
// and segments, which must not interleave with a checkpoint snapshot.
func (db *DB) Vacuum() error {
	db.cpMu.RLock()
	defer db.cpMu.RUnlock()
	return db.vac.Drain()
}

// admitWrite paces one vector write against the unmerged backlog (see
// BackpressureConfig). It must run before the caller takes cpMu: a
// paced writer sleeping under the shared lock would delay checkpoints.
func (db *DB) admitWrite() {
	if db.gov != nil {
		db.gov.Admit()
	}
}

// normalizeAttrs converts an attribute map onto WAL-encodable values and
// a deterministic (name-sorted) record attribute list.
func normalizeAttrs(attrs map[string]any) (map[string]storage.Value, []txn.GraphAttr, error) {
	conv := make(map[string]storage.Value, len(attrs))
	recAttrs := make([]txn.GraphAttr, 0, len(attrs))
	for k, v := range attrs {
		nv, err := txn.NormalizeGraphValue(v)
		if err != nil {
			return nil, nil, fmt.Errorf("tigervector: attribute %q: %w", k, err)
		}
		conv[k] = nv
		recAttrs = append(recAttrs, txn.GraphAttr{Name: k, Value: nv})
	}
	sort.Slice(recAttrs, func(i, j int) bool { return recAttrs[i].Name < recAttrs[j].Name })
	return conv, recAttrs, nil
}

// AddVertex inserts (or upserts by primary key) a vertex. With Durability
// enabled the insert is WAL-logged and fsynced before it is acknowledged.
func (db *DB) AddVertex(vertexType string, attrs map[string]any) (uint64, error) {
	db.cpMu.RLock()
	defer db.cpMu.RUnlock()
	conv, recAttrs, err := normalizeAttrs(attrs)
	if err != nil {
		return 0, err
	}
	rec := &txn.GraphOp{Kind: txn.OpAddVertex, Type: vertexType, Attrs: recAttrs}
	var id uint64
	tx := db.mgr.Begin()
	tx.StageGraphOp(rec, func() error {
		var err error
		id, err = db.graph.AddVertex(vertexType, conv)
		rec.ID = id
		return err
	})
	if _, err := tx.Commit(); err != nil {
		return 0, err
	}
	return id, nil
}

// AddEdge inserts an edge between existing vertices.
func (db *DB) AddEdge(edgeType string, from, to uint64) error {
	db.cpMu.RLock()
	defer db.cpMu.RUnlock()
	tx := db.mgr.Begin()
	tx.StageGraphOp(
		&txn.GraphOp{Kind: txn.OpAddEdge, Type: edgeType, ID: from, To: to},
		func() error { return db.graph.AddEdge(edgeType, from, to) })
	_, err := tx.Commit()
	return err
}

// VertexByKey resolves a primary key to a vertex id.
func (db *DB) VertexByKey(vertexType string, key any) (uint64, bool) {
	return db.graph.VertexByKey(vertexType, key)
}

// Attr reads a scalar attribute of a vertex.
func (db *DB) Attr(vertexType string, id uint64, name string) (any, error) {
	return db.graph.Attr(vertexType, id, name)
}

// SetAttr writes a scalar attribute of a vertex.
func (db *DB) SetAttr(vertexType string, id uint64, name string, v any) error {
	db.cpMu.RLock()
	defer db.cpMu.RUnlock()
	nv, err := txn.NormalizeGraphValue(v)
	if err != nil {
		return fmt.Errorf("tigervector: attribute %q: %w", name, err)
	}
	tx := db.mgr.Begin()
	tx.StageGraphOp(
		&txn.GraphOp{Kind: txn.OpSetAttr, Type: vertexType, ID: id,
			Attrs: []txn.GraphAttr{{Name: name, Value: nv}}},
		func() error { return db.graph.SetAttr(vertexType, id, name, nv) })
	_, err = tx.Commit()
	return err
}

// DeleteVertex tombstones a vertex and transactionally deletes its
// embedding attributes; one WAL record covers both.
func (db *DB) DeleteVertex(vertexType string, id uint64) error {
	db.admitWrite()
	db.cpMu.RLock()
	defer db.cpMu.RUnlock()
	vt, ok := db.graph.Schema().VertexType(vertexType)
	if !ok {
		return fmt.Errorf("tigervector: unknown vertex type %q", vertexType)
	}
	tx := db.mgr.Begin()
	tx.StageGraphOp(
		&txn.GraphOp{Kind: txn.OpDeleteVertex, Type: vertexType, ID: id},
		func() error { return db.graph.DeleteVertex(vertexType, id) })
	for _, ea := range vt.Embeddings {
		tx.StageVector(txn.StagedVector{
			AttrKey: core.AttrKey(vertexType, ea.Name), Action: txn.Delete, ID: id})
	}
	_, err := tx.Commit()
	return err
}

// NumVertices returns the live vertex count of a type.
func (db *DB) NumVertices(vertexType string) int { return db.graph.NumAlive(vertexType) }

// NumEdges returns the edge count of a type.
func (db *DB) NumEdges(edgeType string) int { return db.graph.NumEdges(edgeType) }

// OutNeighbors returns edge targets from a vertex.
func (db *DB) OutNeighbors(edgeType string, from uint64) []uint64 {
	return db.graph.OutNeighbors(edgeType, from)
}

// InNeighbors returns edge sources into a vertex.
func (db *DB) InNeighbors(edgeType string, to uint64) []uint64 {
	return db.graph.InNeighbors(edgeType, to)
}
