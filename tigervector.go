// Package tigervector is a from-scratch Go reproduction of TigerVector
// (SIGMOD 2025): vector search integrated natively into a TigerGraph-style
// MPP property-graph database.
//
// A DB owns a property graph (schema, vertices, edges), an embedding
// service managing vector attributes decoupled from other attributes
// (per-segment HNSW indexes, MVCC vector deltas, two background vacuum
// processes), an MPP query engine, and a GSQL-subset interpreter with
// declarative vector search:
//
//	db, _ := tigervector.Open(tigervector.Config{})
//	defer db.Close()
//	_ = db.Exec(`
//	  CREATE VERTEX Post (id INT PRIMARY KEY, author STRING, content STRING);
//	  ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE content_emb (
//	    DIMENSION = 128, MODEL = GPT4, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);
//	  CREATE QUERY topk (LIST<FLOAT> qv, INT k) {
//	    Res = SELECT s FROM (s:Post) ORDER BY VECTOR_DIST(s.content_emb, qv) LIMIT k;
//	    PRINT Res;
//	  }`)
//	res, _ := db.Run("topk", map[string]any{"qv": queryVec, "k": 10})
//
// Filtered search, vector search on graph patterns, vector similarity
// joins, and the composable VectorSearch() function are all supported;
// see the examples directory.
package tigervector

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/gsql"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/vacuum"
)

// Config controls a DB instance. The zero value is usable.
type Config struct {
	// SegmentSize is the number of vertices per storage segment (the MPP
	// parallelism unit). Default 1024.
	SegmentSize int
	// DataDir holds delta files and the WAL. Default: a fresh temp dir.
	DataDir string
	// DefaultEf is the index search beam used when queries don't set ef.
	// Default 64.
	DefaultEf int
	// DisableVacuum turns off the background delta-merge and index-merge
	// processes; committed vector updates are then served from the delta
	// store until Vacuum() is called manually.
	DisableVacuum bool
	// VacuumInterval overrides the index merge cadence. Default 200ms.
	VacuumInterval time.Duration
	// Seed fixes all internal randomness (HNSW levels, Louvain order).
	Seed int64
	// Durability enables the write-ahead log for vector updates.
	Durability bool
	// Workers is the width of the inter-query worker pool used by
	// BatchVectorSearch and the serving layer. Default GOMAXPROCS.
	Workers int
}

// DB is a TigerVector database instance.
type DB struct {
	cfg     Config
	graph   *graph.Store
	svc     *core.Service
	mgr     *txn.Manager
	engine  *engine.Engine
	interp  *gsql.Interpreter
	vac     *vacuum.Manager
	pool    *core.Pool
	walFile *os.File
	ownsDir bool
}

// Open creates a DB.
func Open(cfg Config) (*DB, error) {
	if cfg.SegmentSize <= 0 {
		cfg.SegmentSize = storage.DefaultSegmentSize
	}
	if cfg.DefaultEf <= 0 {
		cfg.DefaultEf = 64
	}
	ownsDir := false
	if cfg.DataDir == "" {
		dir, err := os.MkdirTemp("", "tigervector-*")
		if err != nil {
			return nil, fmt.Errorf("tigervector: create data dir: %w", err)
		}
		cfg.DataDir = dir
		ownsDir = true
	} else if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("tigervector: data dir: %w", err)
	}

	sch := graph.NewSchema()
	g := graph.NewStore(sch, cfg.SegmentSize)
	svc := core.NewService(cfg.DataDir, cfg.SegmentSize, cfg.Seed)

	mgr := txn.NewManager(svc, nil)
	eng := engine.New(g, svc, mgr)
	interp := gsql.NewInterpreter(eng)
	interp.DefaultEf = cfg.DefaultEf
	interp.LouvainSeed = cfg.Seed

	db := &DB{
		cfg: cfg, graph: g, svc: svc, mgr: mgr, engine: eng,
		interp: interp, ownsDir: ownsDir,
	}
	if cfg.Durability {
		// Recover the catalog (DDL log) and committed vector updates
		// before opening the WAL for appends.
		if err := db.recover(); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(db.walPath(), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, fmt.Errorf("tigervector: open wal: %w", err)
		}
		db.walFile = f
		mgr2 := txn.NewManager(svc, txn.NewWAL(f))
		mgr2.Recover(mgr.Visible())
		db.mgr = mgr2
		eng.Mgr = mgr2
	}
	db.pool = core.NewPool(cfg.Workers)
	db.vac = vacuum.NewManager(svc, vacuum.Options{
		MergeInterval: cfg.VacuumInterval,
		MaxThreads:    runtime.GOMAXPROCS(0),
		Monitor:       vacuum.LoadFunc(eng.Load),
	})
	if !cfg.DisableVacuum {
		db.vac.Start()
	}
	return db, nil
}

// Close stops background processes and releases resources.
func (db *DB) Close() error {
	db.pool.Close()
	db.vac.Stop()
	if db.walFile != nil {
		db.walFile.Close()
	}
	if db.ownsDir {
		return os.RemoveAll(db.cfg.DataDir)
	}
	return nil
}

// Exec parses and applies GSQL statements: DDL (CREATE VERTEX / EDGE /
// EMBEDDING SPACE, ALTER VERTEX ADD EMBEDDING ATTRIBUTE) and CREATE QUERY
// definitions. With Durability enabled the statements are appended to the
// catalog log and replayed on the next Open.
func (db *DB) Exec(src string) error {
	if err := db.interp.Exec(src); err != nil {
		return err
	}
	if db.cfg.Durability {
		f, err := os.OpenFile(db.catalogPath(), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("tigervector: catalog log: %w", err)
		}
		defer f.Close()
		if _, err := fmt.Fprintf(f, "%s\n", src); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) walPath() string     { return db.cfg.DataDir + "/wal.log" }
func (db *DB) catalogPath() string { return db.cfg.DataDir + "/catalog.gsql" }

// recover replays the catalog log and the vector WAL, restoring schema,
// query definitions, embedding stores and committed vector updates. Graph
// vertices and edges are not covered by the WAL (as in the paper, which
// describes the vector delta log; reload them from their sources).
func (db *DB) recover() error {
	if data, err := os.ReadFile(db.catalogPath()); err == nil && len(data) > 0 {
		if err := db.interp.Exec(string(data)); err != nil {
			return fmt.Errorf("tigervector: catalog replay: %w", err)
		}
	}
	f, err := os.Open(db.walPath())
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	var maxTID txn.TID
	err = txn.ReplayWAL(f, func(tid txn.TID, vectors []txn.StagedVector) error {
		for _, v := range vectors {
			d := txn.VectorDelta{Action: v.Action, ID: v.ID, TID: tid, Vec: v.Vec}
			if err := db.svc.ApplyVectorDelta(v.AttrKey, d); err != nil {
				return err
			}
		}
		if tid > maxTID {
			maxTID = tid
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("tigervector: wal replay: %w", err)
	}
	db.mgr.Recover(maxTID)
	return nil
}

// Queries lists the names of defined GSQL queries.
func (db *DB) Queries() []string { return db.interp.Queries() }

// Vacuum synchronously flushes committed vector deltas and merges them
// into the indexes (one full pass of both background processes).
func (db *DB) Vacuum() error { return db.vac.Drain() }

// AddVertex inserts (or upserts by primary key) a vertex.
func (db *DB) AddVertex(vertexType string, attrs map[string]any) (uint64, error) {
	conv := make(map[string]storage.Value, len(attrs))
	for k, v := range attrs {
		conv[k] = v
	}
	return db.graph.AddVertex(vertexType, conv)
}

// AddEdge inserts an edge between existing vertices.
func (db *DB) AddEdge(edgeType string, from, to uint64) error {
	return db.graph.AddEdge(edgeType, from, to)
}

// VertexByKey resolves a primary key to a vertex id.
func (db *DB) VertexByKey(vertexType string, key any) (uint64, bool) {
	return db.graph.VertexByKey(vertexType, key)
}

// Attr reads a scalar attribute of a vertex.
func (db *DB) Attr(vertexType string, id uint64, name string) (any, error) {
	return db.graph.Attr(vertexType, id, name)
}

// SetAttr writes a scalar attribute of a vertex.
func (db *DB) SetAttr(vertexType string, id uint64, name string, v any) error {
	return db.graph.SetAttr(vertexType, id, name, v)
}

// DeleteVertex tombstones a vertex and transactionally deletes its
// embedding attributes.
func (db *DB) DeleteVertex(vertexType string, id uint64) error {
	vt, ok := db.graph.Schema().VertexType(vertexType)
	if !ok {
		return fmt.Errorf("tigervector: unknown vertex type %q", vertexType)
	}
	tx := db.mgr.Begin()
	tx.StageGraph(func() error { return db.graph.DeleteVertex(vertexType, id) })
	for _, ea := range vt.Embeddings {
		tx.StageVector(txn.StagedVector{
			AttrKey: core.AttrKey(vertexType, ea.Name), Action: txn.Delete, ID: id})
	}
	_, err := tx.Commit()
	return err
}

// NumVertices returns the live vertex count of a type.
func (db *DB) NumVertices(vertexType string) int { return db.graph.NumAlive(vertexType) }

// NumEdges returns the edge count of a type.
func (db *DB) NumEdges(edgeType string) int { return db.graph.NumEdges(edgeType) }

// OutNeighbors returns edge targets from a vertex.
func (db *DB) OutNeighbors(edgeType string, from uint64) []uint64 {
	return db.graph.OutNeighbors(edgeType, from)
}

// InNeighbors returns edge sources into a vertex.
func (db *DB) InNeighbors(edgeType string, to uint64) []uint64 {
	return db.graph.InNeighbors(edgeType, to)
}
