package tigervector

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestConcurrentWorkload hammers one DB with concurrent searches, GSQL
// queries, transactional vector updates and the background vacuum — the
// whole stack under contention. Invariants checked:
//
//  1. no search ever returns a vertex whose embedding was deleted before
//     the search began,
//  2. an upsert is visible to searches that start after it commits,
//  3. every GSQL result set respects its filter.
func TestConcurrentWorkload(t *testing.T) {
	db, err := Open(Config{SegmentSize: 64, Seed: 1, DataDir: t.TempDir(),
		VacuumInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, db)
	if err := db.Exec(testDDL); err != nil {
		t.Fatal(err)
	}
	const n = 400
	r := rand.New(rand.NewSource(2))
	db.AddVertex("Person", map[string]any{"id": int64(0), "name": "Alice"})
	var ids []uint64
	var vecs [][]float32
	for i := 0; i < n; i++ {
		lang := "English"
		if i%2 == 0 {
			lang = "French"
		}
		id, _ := db.AddVertex("Post", map[string]any{
			"id": int64(i), "language": lang, "length": int64(i)})
		v := make([]float32, 8)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		ids = append(ids, id)
		vecs = append(vecs, v)
	}
	if err := db.BulkLoadEmbeddings("Post", "content_emb", ids, vecs); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`
CREATE QUERY eng (LIST<FLOAT> qv, INT k) {
  R = SELECT s FROM (s:Post) WHERE s.language = "English"
      ORDER BY VECTOR_DIST(s.content_emb, qv) LIMIT k;
  PRINT R;
}`); err != nil {
		t.Fatal(err)
	}

	// Ids >= n/2 are mutated concurrently; ids < n/4 get deleted up front
	// so searches can assert their absence throughout.
	for i := 0; i < n/4; i++ {
		if err := db.DeleteEmbedding("Post", "content_emb", ids[i]); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup       // finite workers
	var writerWG sync.WaitGroup // unbounded writer, stopped after workers
	stop := make(chan struct{})
	errCh := make(chan error, 64)
	report := func(format string, args ...any) {
		select {
		case errCh <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Writer: keeps upserting fresh vectors for the upper half, paced so
	// the single-core vacuum can keep the delta store bounded.
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		wr := rand.New(rand.NewSource(3))
		for i := 0; i < 2000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := ids[n/2+wr.Intn(n/2)]
			v := make([]float32, 8)
			for j := range v {
				v[j] = float32(wr.NormFloat64())
			}
			if err := db.UpsertEmbedding("Post", "content_emb", id, v); err != nil {
				report("upsert: %v", err)
				return
			}
			if i%50 == 0 {
				time.Sleep(time.Millisecond) // let the vacuum breathe
			}
		}
	}()

	// Direct searchers.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sr := rand.New(rand.NewSource(int64(10 + w)))
			for i := 0; i < 150; i++ {
				q := make([]float32, 8)
				for j := range q {
					q[j] = float32(sr.NormFloat64())
				}
				hits, err := db.VectorSearch([]string{"Post.content_emb"}, q, 10, &SearchOptions{Ef: 64})
				if err != nil {
					report("search: %v", err)
					return
				}
				for _, h := range hits {
					if h.ID < ids[n/4] {
						report("deleted embedding %d returned", h.ID)
						return
					}
				}
			}
		}(w)
	}

	// GSQL searchers: results must all be English posts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		gr := rand.New(rand.NewSource(20))
		for i := 0; i < 80; i++ {
			q := make([]float64, 8)
			for j := range q {
				q[j] = gr.NormFloat64()
			}
			res, err := db.Run("eng", map[string]any{"qv": q, "k": 5})
			if err != nil {
				report("gsql: %v", err)
				return
			}
			set := res.Outputs[0].Value.(*VertexSet)
			for _, id := range set.IDs {
				lang, err := db.Attr("Post", id, "language")
				if err != nil || lang.(string) != "English" {
					report("gsql filter violated on %d (%v, %v)", id, lang, err)
					return
				}
			}
		}
	}()

	// Visibility prober: upsert a sentinel, then immediately search it.
	// The sentinel id lives in [n/4, n/2): not deleted up front and
	// outside the writer's range, so the prober's own upserts are the
	// only writes to it — read-your-writes must hold no matter how long
	// the search queues behind other pool work. (ids[n/2] itself is in
	// the writer's range: probing it races with a legitimate overwrite.)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			sentinel := []float32{float32(1000 + i), 0, 0, 0, 0, 0, 0, 0}
			id := ids[n/3]
			if err := db.UpsertEmbedding("Post", "content_emb", id, sentinel); err != nil {
				report("sentinel upsert: %v", err)
				return
			}
			hits, err := db.VectorSearch([]string{"Post.content_emb"}, sentinel, 1, nil)
			if err != nil {
				report("sentinel search: %v", err)
				return
			}
			if len(hits) != 1 || hits[0].ID != id || hits[0].Distance != 0 {
				report("iteration %d: committed upsert invisible: %+v", i, hits)
				return
			}
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("stress test deadlocked")
	}
	close(stop)
	writerWG.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	// After quiescing, the vacuum must converge and the data stays sane.
	if err := db.Vacuum(); err != nil {
		t.Fatal(err)
	}
	hits, err := db.VectorSearch([]string{"Post.content_emb"}, vecs[n/4], 1, nil)
	if err != nil || len(hits) != 1 {
		t.Fatalf("post-stress search = %+v, %v", hits, err)
	}
}

// TestSoakMixedWorkload is the serving-mode soak: a durable DB under
// sustained concurrent upserts, searches and periodic checkpoints for a
// fixed wall budget. Unlike TestConcurrentWorkload (which checks MVCC
// visibility invariants), this test holds a *recall* floor while the
// write path churns: writers re-upsert each vector with its original
// value, so every upsert runs the full WAL -> delta store -> vacuum ->
// index-merge path yet the brute-force oracle stays exact. Afterwards
// the system must quiesce completely — zero errors, every store's
// ActiveQueries back to zero, no in-flight pool work, no vacuum or
// checkpoint failures.
func TestSoakMixedWorkload(t *testing.T) {
	soak := 2 * time.Second
	if testing.Short() {
		soak = 500 * time.Millisecond
	}
	db, err := Open(Config{SegmentSize: 64, Seed: 1, DataDir: t.TempDir(),
		Durability: true, NoFsync: true, VacuumInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, db)
	if err := db.Exec(testDDL); err != nil {
		t.Fatal(err)
	}

	const (
		n       = 512
		dim     = 8
		queries = 20
		k       = 10
	)
	ds, err := workload.GenVectors(workload.VectorConfig{
		Name: "soak", N: n, Dim: dim, NumQueries: queries, GTK: k, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, n)
	rev := make(map[uint64]int, n)
	for i := 0; i < n; i++ {
		id, err := db.AddVertex("Post", map[string]any{
			"id": int64(i), "language": "English", "length": int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		rev[id] = i
	}
	if err := db.BulkLoadEmbeddings("Post", "content_emb", ids, ds.Vectors); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 64)
	report := func(format string, args ...any) {
		select {
		case errCh <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Writers: rewrite live vectors with their original values so the
	// ground truth never drifts while the delta store stays busy.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wr := rand.New(rand.NewSource(int64(100 + w)))
			var upserts int
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := wr.Intn(n)
				if err := db.UpsertEmbedding("Post", "content_emb", ids[i], ds.Vectors[i]); err != nil {
					report("soak upsert: %v", err)
					return
				}
				if upserts++; upserts%40 == 0 {
					time.Sleep(time.Millisecond) // let the vacuum breathe
				}
			}
		}(w)
	}

	// Searchers: accumulate aggregate recall@k against the static oracle.
	var mu sync.Mutex
	hitCount, totalCount := 0, 0
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sr := rand.New(rand.NewSource(int64(200 + w)))
			ctx := context.Background()
			hits, total := 0, 0
			for {
				select {
				case <-stop:
					mu.Lock()
					hitCount += hits
					totalCount += total
					mu.Unlock()
					return
				default:
				}
				qi := sr.Intn(queries)
				res, err := db.Search(ctx, Request{
					Attrs: []string{"Post.content_emb"},
					Query: ds.Queries[qi], K: k, Ef: 96,
				})
				if err != nil {
					report("soak search: %v", err)
					return
				}
				truth := ds.GroundTruth[qi]
				if len(truth) > k {
					truth = truth[:k]
				}
				want := map[uint64]bool{}
				for _, id := range truth {
					want[id] = true
				}
				for _, h := range res.Hits {
					if want[uint64(rev[h.ID])] {
						hits++
					}
				}
				total += len(truth)
			}
		}(w)
	}

	// Checkpointer: periodic full checkpoints race the writers and the
	// vacuum's delta flushes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if _, err := db.Checkpoint(); err != nil {
					report("soak checkpoint: %v", err)
					return
				}
			}
		}
	}()

	time.Sleep(soak)
	close(stop)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("soak test deadlocked")
	}
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	if totalCount == 0 {
		t.Fatal("soak ran zero searches")
	}
	recall := float64(hitCount) / float64(totalCount)
	t.Logf("soak: %d scored hits over %d truth entries, recall@%d = %.4f", hitCount, totalCount, k, recall)
	if recall < 0.95 {
		t.Errorf("soak recall@%d = %.4f under mixed load, floor 0.95", k, recall)
	}

	// Quiesce: one manual vacuum, then every serving counter must be back
	// at baseline.
	if err := db.Vacuum(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	for _, store := range st.Stores {
		if store.ActiveQueries != 0 {
			t.Errorf("store %s: %d active queries after quiesce", store.Attr, store.ActiveQueries)
		}
	}
	if st.Pool.InFlight != 0 {
		t.Errorf("pool reports %d in-flight queries after quiesce", st.Pool.InFlight)
	}
	if st.Vacuum.Errors != 0 {
		t.Errorf("vacuum recorded %d errors", st.Vacuum.Errors)
	}
	if st.CheckpointErrors != 0 {
		t.Errorf("%d checkpoint errors", st.CheckpointErrors)
	}
	if st.Checkpoints == 0 {
		t.Error("soak completed without a single checkpoint")
	}
}
