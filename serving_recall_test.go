package tigervector

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/workload"
)

// TestServingRecallFloor is the recall guardrail the quantized-kernel
// and replication work will be judged against (ROADMAP items 1-2): on a
// seeded SIFT-like dataset, unfiltered HNSW search must hold recall@10
// >= 0.95, and each of the three filtered-search strategies — forced
// via planner thresholds — must stay within its oracle bound. Any
// change to the distance kernels, segment representation or planner
// that silently costs recall trips this test before a benchmark run
// would ever notice.
func TestServingRecallFloor(t *testing.T) {
	const (
		n       = 2000
		dim     = 32
		queries = 50
		k       = 10
		ef      = 96
	)
	ds, err := workload.GenVectors(workload.VectorConfig{
		Name: "recall-floor-sift-like", N: n, Dim: dim,
		NumQueries: queries, GTK: k, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(Config{SegmentSize: 256, Seed: 1, DataDir: t.TempDir(), DisableVacuum: true})
	if err != nil {
		t.Fatal(err)
	}
	defer closeDB(t, db)
	if err := db.Exec(fmt.Sprintf(`
CREATE VERTEX Item (id INT PRIMARY KEY);
ALTER VERTEX Item ADD EMBEDDING ATTRIBUTE emb (
  DIMENSION = %d, MODEL = GPT4, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);`, dim)); err != nil {
		t.Fatal(err)
	}
	// The DB assigns its own vertex ids; keep the dataset-index mapping
	// for ground-truth comparison.
	ids := make([]uint64, n)
	rev := make(map[uint64]int, n)
	for i := 0; i < n; i++ {
		id, err := db.AddVertex("Item", map[string]any{"id": int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		rev[id] = i
	}
	if err := db.BulkLoadEmbeddings("Item", "emb", ids, ds.Vectors); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	recallOf := func(truth [][]uint64, filter *VertexSet) (float64, *PlanInfo) {
		t.Helper()
		hits, total := 0, 0
		var plan *PlanInfo
		for qi, q := range ds.Queries {
			res, err := db.Search(ctx, Request{
				Attrs: []string{"Item.emb"}, Query: q, K: k, Ef: ef, Filter: filter,
			})
			if err != nil {
				t.Fatalf("query %d: %v", qi, err)
			}
			if res.Plan != nil {
				plan = res.Plan
			}
			want := map[uint64]bool{}
			tq := truth[qi]
			if len(tq) > k {
				tq = tq[:k]
			}
			for _, id := range tq {
				want[id] = true
			}
			for _, h := range res.Hits {
				if want[uint64(rev[h.ID])] {
					hits++
				}
			}
			total += len(tq)
		}
		return float64(hits) / float64(total), plan
	}

	// Unfiltered HNSW floor.
	if recall, _ := recallOf(ds.GroundTruth, nil); recall < 0.95 {
		t.Errorf("unfiltered HNSW recall@%d = %.4f, floor 0.95", k, recall)
	}

	// Each planner strategy, forced via thresholds, at a selectivity in
	// its natural band, against the exact filtered oracle. Brute scans
	// exactly the qualified slots, so it must be (near-)exact; bitmap
	// inflates ef by 1/selectivity; post over-fetches and filters.
	cases := []struct {
		strategy string
		cfg      core.PlanConfig
		stride   int
		floor    float64
		usedSegs func(p *PlanInfo) int
	}{
		{"brute", core.PlanConfig{BruteCount: 1 << 30, BruteSelectivity: 1.1, MaxEfScale: 1},
			100, 0.999, func(p *PlanInfo) int { return p.BruteSegments }},
		{"bitmap", core.PlanConfig{BruteCount: -1, BruteSelectivity: -1, PostSelectivity: 2},
			10, 0.95, func(p *PlanInfo) int { return p.BitmapSegments }},
		{"post", core.PlanConfig{BruteCount: -1, BruteSelectivity: -1, PostSelectivity: 1e-12},
			2, 0.90, func(p *PlanInfo) int { return p.PostSegments }},
	}
	defer db.svc.SetPlanConfig(core.PlanConfig{}) // restore defaults
	for _, tc := range cases {
		db.svc.SetPlanConfig(tc.cfg)
		var admitted []uint64
		var oracleIDs []uint64
		var oracleVecs [][]float32
		for i := 0; i < n; i += tc.stride {
			admitted = append(admitted, ids[i])
			oracleIDs = append(oracleIDs, ds.IDs[i])
			oracleVecs = append(oracleVecs, ds.Vectors[i])
		}
		truth := bruteforce.GroundTruth(ds.Metric,
			bruteforce.SliceSource{IDs: oracleIDs, Vecs: oracleVecs}, ds.Queries, k)
		recall, plan := recallOf(truth, &VertexSet{Type: "Item", IDs: admitted})
		if recall < tc.floor {
			t.Errorf("%s plan recall@%d = %.4f at selectivity 1/%d, floor %.3f",
				tc.strategy, k, recall, tc.stride, tc.floor)
		}
		// The forced thresholds must have actually exercised the intended
		// strategy, or the floor above is testing the wrong code path.
		if plan == nil {
			t.Fatalf("%s plan: filtered search reported no plan", tc.strategy)
		}
		if tc.usedSegs(plan) == 0 {
			t.Errorf("%s plan: strategy unused, plan = %+v", tc.strategy, plan)
		}
	}
}
