package tigervector

// Distance-kernel benchmarks for the flat segment layout, comparing the
// three real end-to-end segment-scan paths: the pre-flat scalar baseline
// (bruteforce.TopK over a Source — per-row interface calls, a liveness
// probe and per-pair scoring over pointer-chased rows, exactly what
// SearchSegment's brute branch ran before the flat rework), the blocked
// path (TopKFlat over one contiguous arena), and the int8 (SQ8) quantized
// path including its exact re-scoring pass, at the dimensionalities the
// paper's workloads use. A recall section measures what quantized ranking
// costs in accuracy with and without the re-scoring pass. With
// TGV_BENCH_KERNELS_OUT set the numbers are written as schema-versioned
// JSON (`make bench-kernels` emits BENCH_kernels.json).

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/quant"
	"repro/internal/storage"
	"repro/internal/vectormath"
)

// kernelRows is the scan length per op: a multiple of 64 (the quantized
// scorer's mask-word granularity) sized like a filled default segment.
const kernelRows = 4096

// kernelK is the scan's top-k width, matching the serving default.
const kernelK = 10

// kernelCorpus builds one Gaussian corpus twice over: as independently
// allocated rows (the pre-flat layout) and as one contiguous arena. The
// row objects are allocated in shuffled order: a real pre-flat segment's
// rows were cloned one at a time as deltas merged, interleaved with
// unrelated heap churn, so a logical-order scan chased pointers across
// the heap. Allocating them in a tight sequential loop would lay them
// out arena-like and flatter the baseline.
func kernelCorpus(dim int, seed int64) (vecs [][]float32, flat []float32, queries [][]float32) {
	r := rand.New(rand.NewSource(seed))
	flat = make([]float32, kernelRows*dim)
	for i := range flat {
		flat[i] = float32(r.NormFloat64())
	}
	vecs = make([][]float32, kernelRows)
	for _, i := range r.Perm(kernelRows) {
		v := make([]float32, dim)
		copy(v, flat[i*dim:(i+1)*dim])
		vecs[i] = v
	}
	queries = make([][]float32, 16)
	for i := range queries {
		q := make([]float32, dim)
		for j := range q {
			q[j] = float32(r.NormFloat64())
		}
		queries[i] = q
	}
	return vecs, flat, queries
}

// benchSource replicates the deleted segSource adapter byte for byte: the
// same Source interface dispatch, nil-row check and liveness probe
// through an interface the pre-flat SearchSegment paid per row.
type benchSource struct {
	base uint64
	vecs [][]float32
	live interface{ Get(int) bool }
}

func (s benchSource) Len() int { return len(s.vecs) }

func (s benchSource) At(i int) (uint64, []float32, bool) {
	if s.vecs[i] == nil || !s.live.Get(i) {
		return 0, nil, false
	}
	return s.base + uint64(i), s.vecs[i], true
}

func fullMask(nRows int) []uint64 {
	words := make([]uint64, nRows/64)
	for i := range words {
		words[i] = ^uint64(0)
	}
	return words
}

// recallAt10 returns |got ∩ oracle| / |oracle| for the id sets.
func recallAt10(oracle, got []bruteforce.Result) float64 {
	want := make(map[uint64]bool, len(oracle))
	for _, r := range oracle {
		want[r.ID] = true
	}
	hit := 0
	for _, r := range got {
		if want[r.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(oracle))
}

// quantTopKNoRescore ranks purely by quantized scores (the re-scoring
// pass disabled), isolating what the exact pass buys.
func quantTopKNoRescore(sc *quant.Scorer, mask []uint64, nRows, k int) []bruteforce.Result {
	out := make([]float32, nRows)
	sc.ScoreMasked(0, mask, out)
	acc := bruteforce.NewAcc(k)
	for r := 0; r < nRows; r++ {
		acc.Push(uint64(r), out[r])
	}
	return acc.Results()
}

// BenchmarkDistanceKernels measures full-segment top-k scan throughput —
// the scalar per-pair baseline vs the blocked batch path vs the int8
// quantized path (re-scoring included) — at d=32/128/768, and computes
// quantized recall@10 against the exact scan with and without
// re-scoring. Keyed last-write-wins collection, like
// BenchmarkFilteredSearch: only the fully measured runs are emitted.
func BenchmarkDistanceKernels(b *testing.B) {
	type row struct {
		Dim        int     `json:"dim"`
		Mode       string  `json:"mode"`
		NsPerScan  float64 `json:"ns_per_scan"`
		RowsPerSec float64 `json:"rows_per_sec"`
	}
	byKey := map[string]row{}
	var keyOrder []string
	record := func(key string, dim int, mode string, elapsedNs float64, n int) {
		if _, seen := byKey[key]; !seen {
			keyOrder = append(keyOrder, key)
		}
		perScan := elapsedNs / float64(n)
		byKey[key] = row{Dim: dim, Mode: mode, NsPerScan: perScan,
			RowsPerSec: float64(kernelRows) / (perScan / 1e9)}
	}

	mask := fullMask(kernelRows)
	var floatBytes, quantBytes int
	for _, dim := range []int{32, 128, 768} {
		vecs, flat, queries := kernelCorpus(dim, int64(dim))
		codec := quant.Encode(flat, dim, kernelRows, mask)
		if dim == 128 {
			floatBytes = 4 * len(flat)
			quantBytes = codec.Bytes()
		}
		live := storage.NewBitmap(kernelRows)
		for r := 0; r < kernelRows; r++ {
			live.Set(r)
		}
		src := benchSource{base: 0, vecs: vecs, live: live}

		key := fmt.Sprintf("scalar/d%d", dim)
		b.Run(key, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bruteforce.TopK(vectormath.L2, src, queries[i%len(queries)], kernelK, nil)
			}
			record(key, dim, "scalar", float64(b.Elapsed().Nanoseconds()), b.N)
		})

		key = fmt.Sprintf("blocked/d%d", dim)
		b.Run(key, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := vectormath.Prepare(vectormath.L2, queries[i%len(queries)])
				bruteforce.TopKFlat(&p, 0, flat, dim, mask, kernelRows, kernelK)
			}
			record(key, dim, "blocked", float64(b.Elapsed().Nanoseconds()), b.N)
		})

		key = fmt.Sprintf("int8/d%d", dim)
		b.Run(key, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				p := vectormath.Prepare(vectormath.L2, q)
				sc := codec.NewScorer(vectormath.L2, q)
				bruteforce.TopKFlatQuant(sc, &p, 0, flat, dim, mask, kernelRows, kernelK, 4)
			}
			record(key, dim, "int8", float64(b.Elapsed().Nanoseconds()), b.N)
		})
	}

	// Recall of quantized ranking vs the exact scan at d=128, k=10,
	// averaged over the query set; the re-scored variant runs the real
	// TopKFlatQuant path with the default rescore factor.
	const k, rescore = 10, 4
	_, flat, queries := kernelCorpus(128, 128)
	codec := quant.Encode(flat, 128, kernelRows, mask)
	var recallRaw, recallRescored float64
	for _, q := range queries {
		p := vectormath.Prepare(vectormath.L2, q)
		oracle := bruteforce.TopKFlat(&p, 0, flat, 128, mask, kernelRows, k)
		sc := codec.NewScorer(vectormath.L2, p.Vec)
		recallRaw += recallAt10(oracle, quantTopKNoRescore(sc, mask, kernelRows, k))
		rescored, _ := bruteforce.TopKFlatQuant(sc, &p, 0, flat, 128, mask, kernelRows, k, rescore)
		recallRescored += recallAt10(oracle, rescored)
	}
	recallRaw /= float64(len(queries))
	recallRescored /= float64(len(queries))

	rows := make([]row, 0, len(keyOrder))
	for _, key := range keyOrder {
		rows = append(rows, byKey[key])
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Dim < rows[j].Dim })
	type quantReport struct {
		Dim             int     `json:"dim"`
		K               int     `json:"k"`
		Queries         int     `json:"queries"`
		RescoreFactor   int     `json:"rescore_factor"`
		FloatBytes      int     `json:"float_bytes"`
		QuantBytes      int     `json:"quant_bytes"`
		RecallNoRescore float64 `json:"recall_no_rescore"`
		RecallRescored  float64 `json:"recall_rescored"`
	}
	if out := os.Getenv("TGV_BENCH_KERNELS_OUT"); out != "" && len(rows) > 0 {
		payload, err := json.MarshalIndent(struct {
			Benchmark     string      `json:"benchmark"`
			SchemaVersion int         `json:"schema_version"`
			Rows          int         `json:"rows"`
			Metric        string      `json:"metric"`
			Throughput    []row       `json:"throughput"`
			Quantization  quantReport `json:"quantization"`
		}{
			Benchmark: "DistanceKernels", SchemaVersion: 1,
			Rows: kernelRows, Metric: "l2", Throughput: rows,
			Quantization: quantReport{128, k, len(queries), rescore,
				floatBytes, quantBytes, recallRaw, recallRescored},
		}, "", " ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(out, append(payload, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		b.Logf("kernel bench written to %s (recall@10 raw %.3f, rescored %.3f)",
			out, recallRaw, recallRescored)
	}
}
