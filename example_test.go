package tigervector_test

import (
	"context"
	"fmt"
	"log"

	tigervector "repro"
)

// ExampleOpen shows the minimal lifecycle: open a DB, install a schema
// with an embedding attribute, insert a vertex with its embedding.
func ExampleOpen() {
	db, err := tigervector.Open(tigervector.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = db.Close() }() // best-effort: examples have no tb to fail

	err = db.Exec(`
CREATE VERTEX Doc (id INT PRIMARY KEY, title STRING);
ALTER VERTEX Doc ADD EMBEDDING ATTRIBUTE emb (
  DIMENSION = 4, MODEL = GPT4, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);`)
	if err != nil {
		log.Fatal(err)
	}
	id, err := db.AddVertex("Doc", map[string]any{"id": int64(1), "title": "hello"})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.UpsertEmbedding("Doc", "emb", id, []float32{1, 0, 0, 0}); err != nil {
		log.Fatal(err)
	}
	fmt.Println(db.NumVertices("Doc"))
	// Output: 1
}

// ExampleDB_VectorSearch runs a top-k search over an embedding
// attribute.
func ExampleDB_VectorSearch() {
	db, err := tigervector.Open(tigervector.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = db.Close() }() // best-effort: examples have no tb to fail
	err = db.Exec(`
CREATE VERTEX Doc (id INT PRIMARY KEY, title STRING);
ALTER VERTEX Doc ADD EMBEDDING ATTRIBUTE emb (
  DIMENSION = 4, MODEL = GPT4, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);`)
	if err != nil {
		log.Fatal(err)
	}
	for i, vec := range [][]float32{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}} {
		id, _ := db.AddVertex("Doc", map[string]any{"id": int64(i), "title": fmt.Sprintf("doc %d", i)})
		if err := db.UpsertEmbedding("Doc", "emb", id, vec); err != nil {
			log.Fatal(err)
		}
	}
	hits, err := db.VectorSearch([]string{"Doc.emb"}, []float32{0, 1, 0, 0}, 2, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range hits {
		fmt.Printf("%s %d\n", h.VertexType, h.ID)
	}
	// Output:
	// Doc 1
	// Doc 0
}

// ExampleDB_Search runs the unified request API: a top-k search whose
// context is honored down to the segment scans, then a snapshot-pinned
// follow-up at the TID the first result reported.
func ExampleDB_Search() {
	db, err := tigervector.Open(tigervector.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = db.Close() }() // best-effort: examples have no tb to fail
	err = db.Exec(`
CREATE VERTEX Doc (id INT PRIMARY KEY, title STRING);
ALTER VERTEX Doc ADD EMBEDDING ATTRIBUTE emb (
  DIMENSION = 4, MODEL = GPT4, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);`)
	if err != nil {
		log.Fatal(err)
	}
	for i, vec := range [][]float32{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}} {
		id, _ := db.AddVertex("Doc", map[string]any{"id": int64(i), "title": fmt.Sprintf("doc %d", i)})
		if err := db.UpsertEmbedding("Doc", "emb", id, vec); err != nil {
			log.Fatal(err)
		}
	}
	ctx := context.Background()
	res, err := db.Search(ctx, tigervector.Request{
		Attrs: []string{"Doc.emb"}, Query: []float32{0, 1, 0, 0}, K: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Pin the snapshot for a repeatable follow-up read: writes
	// committed after SnapshotTID stay invisible to it.
	pinned, err := db.Search(ctx, tigervector.Request{
		Attrs: []string{"Doc.emb"}, Query: []float32{0, 1, 0, 0}, K: 2,
		AtTID: res.SnapshotTID,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Hits[0].ID, pinned.SnapshotTID == res.SnapshotTID)
	// Output: 1 true
}

// ExampleDB_BatchVectorSearch executes several searches concurrently
// over the DB's worker pool; results are positional per query.
func ExampleDB_BatchVectorSearch() {
	db, err := tigervector.Open(tigervector.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = db.Close() }() // best-effort: examples have no tb to fail
	err = db.Exec(`
CREATE VERTEX Doc (id INT PRIMARY KEY, title STRING);
ALTER VERTEX Doc ADD EMBEDDING ATTRIBUTE emb (
  DIMENSION = 4, MODEL = GPT4, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);`)
	if err != nil {
		log.Fatal(err)
	}
	for i, vec := range [][]float32{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}} {
		id, _ := db.AddVertex("Doc", map[string]any{"id": int64(i), "title": fmt.Sprintf("doc %d", i)})
		if err := db.UpsertEmbedding("Doc", "emb", id, vec); err != nil {
			log.Fatal(err)
		}
	}
	results := db.BatchVectorSearch([]tigervector.BatchQuery{
		{Attrs: []string{"Doc.emb"}, Query: []float32{1, 0, 0, 0}, K: 1},
		{Attrs: []string{"Doc.emb"}, Query: []float32{0, 0, 1, 0}, K: 1},
	})
	for i, res := range results {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		fmt.Printf("query %d -> doc %d\n", i, res.Hits[0].ID)
	}
	// Output:
	// query 0 -> doc 0
	// query 1 -> doc 2
}
